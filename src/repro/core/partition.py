"""Database partitions, data hierarchy graphs and transaction classes
(paper Section 3.2).

The decomposition workflow is *transaction analysis*: the designer
declares, per transaction type, which segments it writes and which it
reads (a :class:`TransactionProfile`).  From the update profiles the
**data hierarchy graph** (DHG) is built::

    D_i -> D_j   iff some update profile writes in D_i and accesses D_j

A partition is *TST-hierarchical* iff its DHG is a transitive semi-tree;
then every update transaction writes in exactly one segment (the paper's
Property in §3.2 — we verify rather than assume it), that segment names
its *transaction class*, and the **transaction hierarchy graph** (THG)
is the image of the DHG on classes.  Because classes and segments are in
1-1 correspondence we reuse segment ids as class ids, and THG == DHG as
graphs.

Granule naming: a granule id is ``"<segment>:<local name>"`` by default;
an explicit granule->segment mapping can be registered instead for
schemas that do not want the convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.graph import Digraph, SemiTreeIndex, is_transitive_semi_tree
from repro.errors import PartitionError
from repro.txn.transaction import GranuleId, SegmentId


@dataclass(frozen=True)
class TransactionProfile:
    """The declared access pattern of one transaction type.

    ``w(t)`` and ``r(t)`` at segment granularity.  Update profiles must
    write somewhere; read-only profiles (empty ``writes``) do not shape
    the DHG — Section 5 handles them separately.
    """

    name: str
    writes: frozenset[SegmentId]
    reads: frozenset[SegmentId]

    @classmethod
    def update(
        cls, name: str, writes: Iterable[SegmentId], reads: Iterable[SegmentId] = ()
    ) -> "TransactionProfile":
        return cls(name, frozenset(writes), frozenset(reads))

    @classmethod
    def read_only(
        cls, name: str, reads: Iterable[SegmentId]
    ) -> "TransactionProfile":
        return cls(name, frozenset(), frozenset(reads))

    @property
    def is_read_only(self) -> bool:
        return not self.writes

    @property
    def accesses(self) -> frozenset[SegmentId]:
        """``a(t) = r(t) U w(t)``."""
        return self.writes | self.reads

    @property
    def root_segment(self) -> SegmentId:
        """The single write segment of an update profile.

        Only meaningful once the partition has been validated (a TST
        partition forces exactly one write segment); raises otherwise.
        """
        if len(self.writes) != 1:
            raise PartitionError(
                f"profile {self.name!r} writes {len(self.writes)} segments; "
                "a TST-hierarchical partition requires exactly one"
            )
        return next(iter(self.writes))


def build_dhg(
    segments: Iterable[SegmentId],
    profiles: Iterable[TransactionProfile],
) -> Digraph:
    """Construct ``DHG(P, T_u)`` from the update profiles.

    Arcs: for each update profile ``t``, for each write segment ``D_i``
    and each accessed segment ``D_j != D_i``, add ``D_i -> D_j``.
    """
    graph = Digraph(nodes=list(segments))
    for profile in profiles:
        if profile.is_read_only:
            continue
        for written in profile.writes:
            if not graph.has_node(written):
                raise PartitionError(
                    f"profile {profile.name!r} writes unknown segment "
                    f"{written!r}"
                )
            for accessed in profile.accesses:
                if not graph.has_node(accessed):
                    raise PartitionError(
                        f"profile {profile.name!r} accesses unknown segment "
                        f"{accessed!r}"
                    )
                if accessed != written:
                    graph.add_arc(written, accessed)
    return graph


class HierarchicalPartition:
    """A validated TST-hierarchical partition with its derived structures.

    Construction performs the full Section 3.2 validation:

    1. every update profile writes exactly one segment;
    2. the DHG is a transitive semi-tree;
    3. every profile's read segments are *higher than* its root segment
       (this is implied by 2 for declared profiles, but checking it per
       profile yields much better error messages).

    Attributes
    ----------
    dhg:
        The data hierarchy graph.
    index:
        :class:`SemiTreeIndex` over the DHG — critical paths, UCPs and
        the ``higher-than`` order.  Since classes are identified with
        segments this doubles as the THG index.
    classes:
        Segment id -> list of update profile names rooted there (the
        transaction classification).
    """

    def __init__(
        self,
        segments: Sequence[SegmentId],
        profiles: Sequence[TransactionProfile],
        granule_map: Optional[dict[GranuleId, SegmentId]] = None,
    ) -> None:
        if len(set(segments)) != len(segments):
            raise PartitionError("duplicate segment ids in partition")
        self.segments: list[SegmentId] = list(segments)
        self.profiles: dict[str, TransactionProfile] = {}
        for profile in profiles:
            if profile.name in self.profiles:
                raise PartitionError(f"duplicate profile name {profile.name!r}")
            self.profiles[profile.name] = profile

        update_profiles = [p for p in profiles if not p.is_read_only]
        for profile in update_profiles:
            if len(profile.writes) != 1:
                raise PartitionError(
                    f"profile {profile.name!r} writes segments "
                    f"{sorted(profile.writes)}; TST-hierarchical partitions "
                    "allow exactly one write segment per update transaction"
                )

        self.dhg = build_dhg(segments, update_profiles)
        if not is_transitive_semi_tree(self.dhg):
            raise PartitionError(
                "the data hierarchy graph is not a transitive semi-tree; "
                f"arcs: {sorted(map(str, self.dhg.arcs))}"
            )
        self.index = SemiTreeIndex(self.dhg)

        for profile in update_profiles:
            root = profile.root_segment
            for read in profile.reads:
                if read != root and not self.index.is_higher(read, root):
                    raise PartitionError(
                        f"profile {profile.name!r} reads segment {read!r} "
                        f"which is not higher than its root {root!r}"
                    )

        self.classes: dict[SegmentId, list[str]] = {s: [] for s in segments}
        for profile in update_profiles:
            self.classes[profile.root_segment].append(profile.name)

        self._granule_map = dict(granule_map) if granule_map else None

    # ------------------------------------------------------------------
    # Granule -> segment mapping
    # ------------------------------------------------------------------
    def segment_of(self, granule: GranuleId) -> SegmentId:
        """Map a granule id to its segment.

        Uses the explicit map when one was given, otherwise the
        ``"<segment>:<name>"`` convention.
        """
        if self._granule_map is not None:
            segment = self._granule_map.get(granule)
            if segment is None:
                raise PartitionError(f"granule {granule!r} is not mapped")
            return segment
        segment, separator, _ = granule.partition(":")
        if not separator:
            raise PartitionError(
                f"granule {granule!r} does not follow the "
                "'<segment>:<name>' convention and no explicit map was given"
            )
        if segment not in self.classes:
            raise PartitionError(
                f"granule {granule!r} names unknown segment {segment!r}"
            )
        return segment

    def granule(self, segment: SegmentId, name: str) -> GranuleId:
        """Build a granule id following the naming convention."""
        if segment not in self.classes:
            raise PartitionError(f"unknown segment {segment!r}")
        return f"{segment}:{name}"

    # ------------------------------------------------------------------
    # Topology queries (thin veneer over the index)
    # ------------------------------------------------------------------
    def is_higher(self, j: SegmentId, i: SegmentId) -> bool:
        """``T_j ^ T_i`` — is class ``j`` higher than class ``i``?"""
        return self.index.is_higher(j, i)

    def critical_path(self, i: SegmentId, j: SegmentId):
        return self.index.critical_path(i, j)

    def thg(self) -> Digraph:
        """The transaction hierarchy graph.

        Classes are in 1-1 correspondence with segments (same ids), so
        the THG is graph-equal to the DHG; returned as a copy so callers
        can annotate it freely.
        """
        return self.dhg.copy()

    def profile(self, name: str) -> TransactionProfile:
        found = self.profiles.get(name)
        if found is None:
            raise PartitionError(f"unknown transaction profile {name!r}")
        return found

    def read_only_on_one_critical_path(
        self, read_segments: Iterable[SegmentId]
    ) -> bool:
        """Section 5.0 dichotomy for read-only transactions."""
        return self.index.path_on_one_critical_path(list(read_segments))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalPartition(segments={self.segments!r}, "
            f"profiles={sorted(self.profiles)!r})"
        )


@dataclass
class PartitionSummary:
    """A printable report of a partition (used by examples and docs)."""

    partition: HierarchicalPartition
    lines: list[str] = field(default_factory=list)

    def render(self) -> str:
        p = self.partition
        lines = ["Segments and rooted transaction classes:"]
        for segment in p.segments:
            names = ", ".join(p.classes[segment]) or "(no update class)"
            lines.append(f"  {segment}: {names}")
        lines.append("Critical arcs (transitive reduction of the DHG):")
        for u, v in sorted(p.index.critical_arcs()):
            lines.append(f"  {u} -> {v}")
        transitive = set(p.dhg.arcs) - set(p.index.critical_arcs())
        if transitive:
            lines.append("Transitively induced arcs:")
            for u, v in sorted(transitive):
                lines.append(f"  {u} -> {v}")
        return "\n".join(lines)
