"""Protocol B: synchronization inside a transaction's own root segment.

The paper (Section 4.2) delegates intra-class accesses to "the basic
timestamp ordering protocol [Bernstein80] or the multi-version
timestamp ordering protocol [Reed78]".  Both are implemented here as
pluggable engines over the shared multi-version store — an ablation
knob for the benchmarks.

Both engines:

* order transactions by initiation timestamp ``I(t)`` (the order HDD's
  cross-class machinery assumes);
* *register* reads (bump the version's read timestamp) — this is the
  intra-segment overhead the paper accepts;
* never let a transaction read another's uncommitted data: a read that
  lands on an uncommitted version blocks until the writer finishes.
  Because the blocked reader is always younger (larger ``I``) than the
  writer it waits for, wait chains point strictly young -> old and can
  never form a deadlock cycle.

Differences:

* :class:`BasicTOEngine` keeps the classic single-version rules on the
  *head* version (read/write rejected when a newer version exists), so
  late transactions abort more;
* :class:`MVTOEngine` serves reads from the newest version at or below
  the reader's timestamp (reads never rejected) and only rejects a
  write when the immediately preceding version has been read by a
  younger transaction.

Old versions are retained in both cases — lower-class Protocol A
readers need them regardless of which intra-class engine runs.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.scheduling import (
    Outcome,
    SchedulerStats,
    aborted,
    blocked,
    granted,
)
from repro.storage.store import MultiVersionStore
from repro.storage.version import Version
from repro.txn.schedule import Schedule
from repro.txn.transaction import GranuleId, Transaction


class IntraClassEngine(abc.ABC):
    """Interface of a Protocol B engine."""

    name: str = "intra"

    def __init__(
        self,
        store: MultiVersionStore,
        schedule: Schedule,
        stats: SchedulerStats,
    ) -> None:
        self._store = store
        self._schedule = schedule
        self._stats = stats

    @abc.abstractmethod
    def read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        ...

    @abc.abstractmethod
    def write(
        self, txn: Transaction, granule: GranuleId, value: object
    ) -> Outcome:
        ...

    def commit_check(self, txn: Transaction) -> Optional[Outcome]:
        """Engine veto before a commit is finalised.

        ``None`` means "no constraint" (the default: blocking-read
        engines resolve everything at access time).  Engines with
        commit dependencies (Reed MVTO) return blocked/aborted
        outcomes here.
        """
        return None

    def forget(self, txn_id: int) -> None:
        """Drop any per-transaction engine state (commit/abort hook)."""

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------
    def _grant_read(self, txn: Transaction, version: Version) -> Outcome:
        version.register_read(txn.initiation_ts)
        self._stats.reads += 1
        self._stats.read_registrations += 1
        txn.record_read(version.granule)
        self._schedule.record_read(txn.txn_id, version.granule, version.ts)
        return granted(value=version.value, version_ts=version.ts)

    def _read_own_write(self, txn: Transaction, granule: GranuleId) -> Outcome:
        """Read-your-writes; no registration needed for one's own data."""
        self._stats.reads += 1
        txn.record_read(granule)
        self._schedule.record_read(txn.txn_id, granule, txn.initiation_ts)
        return granted(value=txn.workspace[granule], version_ts=txn.initiation_ts)

    def _install(
        self, txn: Transaction, granule: GranuleId, value: object
    ) -> Outcome:
        chain = self._store.chain(granule)
        if granule in txn.workspace:
            # Second write by the same transaction: update the version
            # in place (it keeps the transaction's timestamp).
            chain.version_at(txn.initiation_ts).value = value
        else:
            chain.install(
                Version(granule, txn.initiation_ts, value, writer_id=txn.txn_id)
            )
        txn.record_write(granule, value)
        self._stats.writes += 1
        self._schedule.record_write(txn.txn_id, granule, txn.initiation_ts)
        return granted(version_ts=txn.initiation_ts)


class BasicTOEngine(IntraClassEngine):
    """Basic (single-version-rule) timestamp ordering on the head version."""

    name = "to"

    def read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        if granule in txn.workspace:
            return self._read_own_write(txn, granule)
        head = self._store.chain(granule).head()
        if head.ts > txn.initiation_ts:
            self._stats.read_rejections += 1
            return aborted(
                f"TO read rejected: {granule} has newer version "
                f"{head.ts} > I={txn.initiation_ts}"
            )
        if not head.committed and head.writer_id != txn.txn_id:
            self._stats.read_blocks += 1
            return blocked(waiting_for=head.writer_id)
        return self._grant_read(txn, head)

    def write(
        self, txn: Transaction, granule: GranuleId, value: object
    ) -> Outcome:
        if granule in txn.workspace:
            return self._install(txn, granule, value)
        head = self._store.chain(granule).head()
        if head.ts > txn.initiation_ts:
            self._stats.write_rejections += 1
            return aborted(
                f"TO write rejected: {granule} has newer version "
                f"{head.ts} > I={txn.initiation_ts}"
            )
        if head.rts is not None and head.rts > txn.initiation_ts:
            self._stats.write_rejections += 1
            return aborted(
                f"TO write rejected: {granule} read at {head.rts} "
                f"> I={txn.initiation_ts}"
            )
        if not head.committed and head.writer_id != txn.txn_id:
            self._stats.write_blocks += 1
            return blocked(waiting_for=head.writer_id)
        return self._install(txn, granule, value)


class MVTOEngine(IntraClassEngine):
    """Reed-style multi-version timestamp ordering."""

    name = "mvto"

    def read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        if granule in txn.workspace:
            return self._read_own_write(txn, granule)
        chain = self._store.chain(granule)
        version = chain.latest_at_or_before(txn.initiation_ts)
        assert version is not None  # bootstrap version always exists
        if not version.committed and version.writer_id != txn.txn_id:
            self._stats.read_blocks += 1
            return blocked(waiting_for=version.writer_id)
        return self._grant_read(txn, version)

    def write(
        self, txn: Transaction, granule: GranuleId, value: object
    ) -> Outcome:
        if granule in txn.workspace:
            return self._install(txn, granule, value)
        chain = self._store.chain(granule)
        predecessor = chain.latest_at_or_before(txn.initiation_ts)
        assert predecessor is not None
        if (
            predecessor.rts is not None
            and predecessor.rts > txn.initiation_ts
        ):
            self._stats.write_rejections += 1
            return aborted(
                f"MVTO write rejected: inserting {granule}^"
                f"{txn.initiation_ts} would invalidate a read at "
                f"{predecessor.rts}"
            )
        return self._install(txn, granule, value)


class ReedMVTOEngine(MVTOEngine):
    """Reed's original MVTO: dirty reads with commit dependencies.

    Where :class:`MVTOEngine` blocks a read that lands on an
    uncommitted version, Reed's scheme *grants* it immediately and
    instead defers the reader's **commit** until every version it read
    has committed (a *commit dependency*).  If a depended-upon writer
    aborts — or rewrites the granule, invalidating the value already
    handed out — the reader is doomed and aborts at its own commit
    point (a *cascading abort*).

    Dependencies always point from a younger reader to an older writer
    (the read rule picks versions at or below the reader's timestamp),
    so commit waits can never deadlock.

    The trade-off this engine makes measurable: reads never block, but
    aborts can cascade — the ablation benchmark compares the two MVTO
    flavours head to head.
    """

    name = "mvto-reed"

    def __init__(self, store, schedule, stats) -> None:
        super().__init__(store, schedule, stats)
        #: reader txn -> versions (granule, ts) it read while uncommitted.
        self._commit_deps: dict[int, set[tuple[GranuleId, int]]] = {}
        #: (granule, ts) -> readers handed that uncommitted version.
        self._version_readers: dict[tuple[GranuleId, int], set[int]] = {}
        #: readers invalidated by a rewrite of a version they read.
        self._doomed: set[int] = set()

    def read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        if granule in txn.workspace:
            return self._read_own_write(txn, granule)
        chain = self._store.chain(granule)
        version = chain.latest_at_or_before(txn.initiation_ts)
        assert version is not None
        if not version.committed and version.writer_id != txn.txn_id:
            key = (granule, version.ts)
            self._commit_deps.setdefault(txn.txn_id, set()).add(key)
            self._version_readers.setdefault(key, set()).add(txn.txn_id)
        return self._grant_read(txn, version)

    def write(
        self, txn: Transaction, granule: GranuleId, value: object
    ) -> Outcome:
        if granule in txn.workspace:
            # Rewriting an uncommitted version invalidates any values
            # already handed to dependent readers: doom them.
            key = (granule, txn.initiation_ts)
            for reader in self._version_readers.get(key, ()):
                self._doomed.add(reader)
        return super().write(txn, granule, value)

    def commit_check(self, txn: Transaction) -> Optional[Outcome]:
        if txn.txn_id in self._doomed:
            return aborted(
                "cascading abort: a version this transaction read was "
                "rewritten before it committed"
            )
        for granule, ts in self._commit_deps.get(txn.txn_id, set()):
            chain = self._store.chain(granule)
            if not chain.has_version(ts):
                return aborted(
                    f"cascading abort: writer of {granule}^{ts} aborted"
                )
            version = chain.version_at(ts)
            if not version.committed:
                self._stats.commit_blocks += 1
                return blocked(waiting_for=version.writer_id)
        return None

    def forget(self, txn_id: int) -> None:
        for key in self._commit_deps.pop(txn_id, set()):
            readers = self._version_readers.get(key)
            if readers:
                readers.discard(txn_id)
        self._doomed.discard(txn_id)


ENGINES: dict[str, type[IntraClassEngine]] = {
    BasicTOEngine.name: BasicTOEngine,
    MVTOEngine.name: MVTOEngine,
    ReedMVTOEngine.name: ReedMVTOEngine,
}
