"""Decomposition methodology (paper Sections 7.2.1 and 7.2.2).

The paper defers two methodological questions to future work; both are
implemented here:

* **Acyclic-to-TST coarsening** (§7.2.1): a data hierarchy graph that is
  acyclic but not a transitive semi-tree can be made one by merging
  segments.  :func:`coarsen_to_tst` repeatedly finds an offending
  undirected cycle in the transitive reduction and merges the two
  endpoints of the arc closing it — the gentlest repair step — until
  the graph is a TST.  Granularity is preserved greedily; finding the
  minimum number of merges is a clustering problem the paper does not
  solve either.

* **Decomposition via data analysis** (§7.2.2): :func:`derive_partition`
  starts from *granule-level* transaction profiles, clusters granules
  that must share a segment (everything one transaction type writes),
  builds the candidate DHG over the clusters, coarsens it to a TST, and
  returns a ready :class:`~repro.core.partition.HierarchicalPartition`
  with an explicit granule map — the full pipeline from raw access
  patterns to a legal decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from repro.core.graph import Digraph, Node, is_semi_tree
from repro.core.partition import HierarchicalPartition, TransactionProfile
from repro.errors import PartitionError
from repro.txn.transaction import GranuleId, SegmentId


class _UnionFind:
    """Minimal union-find over hashable items."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}

    def add(self, item: Hashable) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_a] = root_b

    def groups(self) -> dict[Hashable, list[Hashable]]:
        result: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            result.setdefault(self.find(item), []).append(item)
        return result


def _quotient(graph: Digraph, leader: dict[Node, Node]) -> Digraph:
    """The graph induced on merge groups (self-loops dropped)."""
    merged = Digraph(nodes=set(leader.values()))
    for u, v in graph.arcs:
        lu, lv = leader[u], leader[v]
        if lu != lv:
            merged.add_arc(lu, lv)
    return merged


def _offending_pair(reduction: Digraph) -> Optional[tuple[Node, Node]]:
    """Two nodes whose merge breaks an undirected cycle of the reduction.

    Returns the endpoints of the first arc that closes an undirected
    cycle (including antiparallel pairs), or ``None`` when the
    reduction is already a semi-tree.
    """
    for u, v in reduction.arcs:
        if reduction.has_arc(v, u):
            return (u, v)
    uf = _UnionFind()
    for node in reduction.nodes:
        uf.add(node)
    for u, v in sorted(reduction.arcs, key=repr):
        if uf.find(u) == uf.find(v):
            return (u, v)
        uf.union(u, v)
    return None


def coarsen_to_tst(graph: Digraph) -> dict[Node, Node]:
    """Merge nodes of an acyclic digraph until it is a TST (§7.2.1).

    Returns ``node -> group leader``; nodes sharing a leader belong to
    one merged segment.  Raises :class:`PartitionError` if the input
    has a directed cycle that merging cannot remove (merging *can*
    always remove it — a cycle's nodes collapse to one — so the only
    failure mode is an empty graph, which trivially succeeds).
    """
    uf = _UnionFind()
    for node in graph.nodes:
        uf.add(node)

    def leaders() -> dict[Node, Node]:
        return {node: uf.find(node) for node in graph.nodes}

    while True:
        current = _quotient(graph, leaders())
        cycle = current.find_cycle()
        if cycle is not None:
            # Merging created (or the input had) a directed cycle:
            # collapse it entirely.
            first = cycle[0]
            for node in cycle[1:]:
                uf.union(first, node)
            continue
        reduction = current.transitive_reduction()
        pair = _offending_pair(reduction)
        if pair is None:
            if not is_semi_tree(reduction):  # pragma: no cover - safety
                raise PartitionError("coarsening failed to reach a semi-tree")
            return leaders()
        uf.union(*pair)


@dataclass(frozen=True)
class GranuleProfile:
    """A transaction type's access pattern at *granule* level (§7.2.2)."""

    name: str
    writes: frozenset[GranuleId]
    reads: frozenset[GranuleId]

    @classmethod
    def of(
        cls,
        name: str,
        writes: Iterable[GranuleId] = (),
        reads: Iterable[GranuleId] = (),
    ) -> "GranuleProfile":
        return cls(name, frozenset(writes), frozenset(reads))

    @property
    def accesses(self) -> frozenset[GranuleId]:
        return self.writes | self.reads


@dataclass
class DerivedPartition:
    """Result of :func:`derive_partition`."""

    partition: HierarchicalPartition
    granule_map: dict[GranuleId, SegmentId]
    segment_members: dict[SegmentId, list[GranuleId]]

    def segment_of(self, granule: GranuleId) -> SegmentId:
        return self.granule_map[granule]


def derive_partition(profiles: Iterable[GranuleProfile]) -> DerivedPartition:
    """From granule-level profiles to a legal TST-hierarchical partition.

    Pipeline (§7.2.2): (1) all granules written by one transaction type
    must share a segment — union them; (2) every accessed-only granule
    gets its own cluster; (3) build the cluster-level DHG and coarsen it
    to a TST (§7.2.1); (4) name the final segments ``S0, S1, ...`` in a
    deterministic order and emit segment-level profiles plus the
    granule map.
    """
    profile_list = list(profiles)
    if not profile_list:
        raise PartitionError("need at least one granule profile")
    names = [p.name for p in profile_list]
    if len(set(names)) != len(names):
        raise PartitionError("duplicate granule profile names")

    uf = _UnionFind()
    for profile in profile_list:
        for granule in profile.accesses:
            uf.add(granule)
        writes = sorted(profile.writes)
        for granule in writes[1:]:
            uf.union(writes[0], granule)

    all_granules = sorted({g for p in profile_list for g in p.accesses})
    cluster_of = {g: uf.find(g) for g in all_granules}

    # Cluster-level DHG from the update profiles.
    clusters = sorted(set(cluster_of.values()), key=repr)
    dhg = Digraph(nodes=clusters)
    for profile in profile_list:
        if not profile.writes:
            continue
        write_clusters = {cluster_of[g] for g in profile.writes}
        access_clusters = {cluster_of[g] for g in profile.accesses}
        for wc in write_clusters:
            for ac in access_clusters:
                if wc != ac:
                    dhg.add_arc(wc, ac)

    leader = coarsen_to_tst(dhg)

    # Deterministic segment naming by sorted member granules.
    members: dict[Node, list[GranuleId]] = {}
    for granule in all_granules:
        members.setdefault(leader[cluster_of[granule]], []).append(granule)
    ordered_groups = sorted(members.values(), key=lambda ms: ms[0])
    segment_names = [f"S{i}" for i in range(len(ordered_groups))]
    granule_map: dict[GranuleId, SegmentId] = {}
    segment_members: dict[SegmentId, list[GranuleId]] = {}
    for segment, group in zip(segment_names, ordered_groups):
        segment_members[segment] = sorted(group)
        for granule in group:
            granule_map[granule] = segment

    segment_profiles = []
    for profile in profile_list:
        write_segments = {granule_map[g] for g in profile.writes}
        read_segments = {granule_map[g] for g in profile.reads}
        if write_segments:
            if len(write_segments) != 1:  # pragma: no cover - by construction
                raise PartitionError(
                    f"profile {profile.name!r} still writes several "
                    "segments after coarsening"
                )
            segment_profiles.append(
                TransactionProfile.update(
                    profile.name, writes=write_segments, reads=read_segments
                )
            )
        else:
            segment_profiles.append(
                TransactionProfile.read_only(profile.name, reads=read_segments)
            )

    partition = HierarchicalPartition(
        segments=segment_names,
        profiles=segment_profiles,
        granule_map=granule_map,
    )
    return DerivedPartition(
        partition=partition,
        granule_map=granule_map,
        segment_members=segment_members,
    )
