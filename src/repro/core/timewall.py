"""Time walls for read-only transactions (paper Sections 5.1-5.2).

A *time wall* ``TW(m, s)`` is the family ``{ E_s^i(m) : all classes i }``
— one wall component per segment.  Lemma 2.1 shows no dependency can
cross the wall from the old side to the new side, so a read-only
transaction that reads, in every segment, the latest version below that
segment's component observes a consistent database state (Theorem 2).

Release discipline (Section 5.2): the system periodically computes a
fresh wall — starting class ``T_s`` chosen among the lowest classes,
``m`` = current time — and *releases* it once every ``C_late`` involved
is computable.  Read-only transactions use the newest wall released
before their initiation.

Settlement clarification (DESIGN.md §7): for the "never wait, never
register" claim to hold on the reader side, every wall component must
also be *settled* — no transaction of class ``i`` with initiation below
``E_s^i(m)`` may still be running at release time, otherwise a reader
could meet an uncommitted version below the wall.  Classes entered by
an up-hop are settled by construction of ``I_old``; for the starting
class and classes entered by down-hops we wait, exactly as the paper
already waits for ``C_late`` computability.

Lifecycle (DESIGN.md §8): the paper releases walls forever and never
says when one may be forgotten.  Here a released wall is *live* while
it is pinned (a Protocol C transaction is reading below it) or still
servable — the newest wall always is, and a caller may name further
walls to keep (the scheduler keeps ``wall_for(I(t))`` of every active
reader that has not pinned yet).  Everything else is *retired* via
:meth:`TimeWallManager.retire`; the monotonic :attr:`total_released`
counter is what observers (the simulator's wake-up logic, message
accounting) must watch, since ``len(released)`` can shrink.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Mapping, Optional

from repro.core.activity import ActivityTracker
from repro.errors import NotComputableError, ReproError
from repro.obs.events import (
    EventSink,
    NullSink,
    WallPinnedEvent,
    WallReleasedEvent,
    WallRetiredEvent,
    WallUnpinnedEvent,
)
from repro.txn.clock import LogicalClock, Timestamp
from repro.txn.transaction import SegmentId


@dataclass(frozen=True)
class TimeWall:
    """One released time wall.

    ``components[i]`` is ``E_s^i(m)``; ``release_ts`` is ``RT(TW(m,s))``.
    ``components`` is snapshotted and exposed read-only at construction:
    a released wall is an immutable certificate (Theorem 2 holds for the
    values it was released with), so no caller may mutate it in place.
    """

    start_class: SegmentId
    base_time: Timestamp
    release_ts: Timestamp
    components: Mapping[SegmentId, Timestamp]
    #: Release sequence number (1-based; ``w<seq>`` in rendered traces).
    seq: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "components", MappingProxyType(dict(self.components))
        )

    def component(self, segment: SegmentId) -> Timestamp:
        wall = self.components.get(segment)
        if wall is None:
            raise ReproError(f"time wall has no component for {segment!r}")
        return wall

    def __str__(self) -> str:
        parts = ", ".join(
            f"{seg}<{wall}" for seg, wall in sorted(self.components.items())
        )
        return (
            f"TW(m={self.base_time}, s={self.start_class}, "
            f"RT={self.release_ts}: {parts})"
        )


class WallSnapshot:
    """A shared, resolved read view of one released wall.

    ``TimeWall.components`` is a ``MappingProxyType`` (immutability
    certificate); dereferencing it through :meth:`TimeWall.component`
    on every read puts a method call and a proxy hop on the hot path.
    The manager resolves each wall into one plain-dict snapshot and
    every Protocol C reader of that wall shares the same object — one
    dict lookup per read, one resolution per wall ever.
    """

    __slots__ = ("wall", "components")

    def __init__(self, wall: TimeWall) -> None:
        self.wall = wall
        self.components: dict[SegmentId, Timestamp] = dict(wall.components)

    def component(self, segment: SegmentId) -> Timestamp:
        value = self.components.get(segment)
        if value is None:
            raise ReproError(f"time wall has no component for {segment!r}")
        return value


class TimeWallManager:
    """Computes, releases and serves time walls (Protocol C support).

    Parameters
    ----------
    tracker:
        The activity tracker (owns the ``E`` function and the logs).
    clock:
        The scheduler's clock; release times come from here.
    interval:
        Release cadence in clock ticks: a new wall computation is
        attempted whenever at least ``interval`` ticks have passed since
        the last *attempt began*.  Smaller intervals give read-only
        transactions fresher data at higher computation cost — one of
        the ablation knobs in the benchmarks.
    start_class:
        Fixed ``T_s``; by default the first lowest-level class, per the
        paper's recommendation.
    """

    def __init__(
        self,
        tracker: ActivityTracker,
        clock: LogicalClock,
        interval: int = 10,
        start_class: Optional[SegmentId] = None,
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self._tracker = tracker
        self._clock = clock
        self.interval = interval
        lowest = tracker.index.lowest_classes()
        if start_class is None:
            if not lowest:
                raise ReproError("THG has no classes; cannot pick T_s")
            start_class = sorted(map(str, lowest))[0]
        if start_class not in tracker.logs:
            raise ReproError(f"unknown starting class {start_class!r}")
        self.start_class: SegmentId = start_class
        #: Live walls, ascending in ``release_ts``.  Retirement removes
        #: entries, so never use ``len(released)`` to detect *releases*
        #: — watch :attr:`total_released` instead.
        self.released: list[TimeWall] = []
        #: Monotonic count of walls ever released (never decreases).
        self.total_released = 0
        #: Monotonic count of walls retired from :attr:`released`.
        self.total_retired = 0
        #: Pin counts per ``release_ts``: walls Protocol C transactions
        #: are actively reading below.  A pinned wall is never retired.
        self._pins: dict[Timestamp, int] = {}
        #: Shared resolved snapshots, one per live wall (lazily built);
        #: retired walls drop theirs.
        self._snapshots: dict[Timestamp, WallSnapshot] = {}
        #: Base time of the wall currently being computed, if any.
        self._pending_base: Optional[Timestamp] = None
        self.attempts = 0
        self.computations_blocked = 0
        #: Event sink (``None`` = tracing off) and the object whose
        #: ``current_step`` localises emitted events (the scheduler).
        self._sink: Optional[EventSink] = None
        self._step_source: Optional[object] = None
        #: Most recent cause of a failed release attempt, as
        #: ``(class_id, txn_id)`` — reported on the next success.
        self._last_delay: Optional[tuple[SegmentId, Optional[int]]] = None
        #: Retry gate for the pending computation, as ``(base_time,
        #: blocking_class, closures_at_failure)``.  A failed attempt at
        #: a fixed base can only turn around when the class it tripped
        #: over closes an interval (initiations are monotone, so new
        #: begins never enter a past-bound query; values already
        #: computed on earlier hops are final).  Until that class's
        #: ``closures`` counter moves, a retry is provably the same
        #: failure and is skipped wholesale.
        self._retry_gate: Optional[
            tuple[Timestamp, SegmentId, int]
        ] = None
        #: Attempts skipped by the retry gate (each one a whole
        #: ``E``-walk over every class that provably could not succeed).
        self.retries_skipped = 0

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def set_sink(
        self,
        sink: Optional[EventSink],
        step_source: Optional[object] = None,
    ) -> None:
        """Attach an event sink; ``step_source.current_step`` stamps
        events with the driving engine's step counter."""
        if isinstance(sink, NullSink):
            sink = None
        self._sink = sink
        self._step_source = step_source

    def _step(self) -> Optional[int]:
        if self._step_source is None:
            return None
        return getattr(self._step_source, "current_step", None)

    # ------------------------------------------------------------------
    # Release machinery
    # ------------------------------------------------------------------
    def poll(self) -> Optional[TimeWall]:
        """Drive the release loop; call after any commit/abort and on ticks.

        Starts a new wall computation when the cadence is due, retries a
        pending one, and returns the newly released wall when one
        completes (else ``None``).
        """
        now = self._clock.now
        if self._pending_base is None and self._cadence_due(now):
            self._pending_base = now
            self.attempts += 1
        if self._pending_base is None:
            return None
        gate = self._retry_gate
        if gate is not None and gate[0] == self._pending_base:
            log = self._tracker.logs.get(gate[1])
            if log is not None and log.closures == gate[2]:
                # Provably the same failure as last time: charge the
                # attempt to the blocked counter (parity with an
                # actual failed walk) and skip the E-walks.
                self.computations_blocked += 1
                self.retries_skipped += 1
                return None
        return self._try_release(self._pending_base)

    def force_release(self) -> TimeWall:
        """Compute and release a wall at the current time, or fail loudly.

        Used by tests and by drivers that quiesce update activity first.
        """
        wall = self._try_release(self._clock.now)
        if wall is None:
            raise ReproError(
                "time wall not computable: some class has unfinished "
                "transactions below its component"
            )
        return wall

    def _cadence_due(self, now: Timestamp) -> bool:
        if self._pending_base is not None:
            last_base = self._pending_base
        elif self.released:
            last_base = self.released[-1].base_time
        else:
            return True  # nothing released yet: always worth trying
        return now - last_base >= self.interval

    def _try_release(self, base_time: Timestamp) -> Optional[TimeWall]:
        components: dict[SegmentId, Timestamp] = {}
        tracker = self._tracker
        try:
            for class_id in tracker.logs:
                components[class_id] = tracker.e_func(
                    self.start_class, class_id, base_time
                )
        except NotComputableError as exc:
            self._note_delay(exc.class_id, base_time)
            self._arm_gate(base_time, exc.class_id)
            return None
        # Settlement: every transaction below each component must have
        # finished, so readers at this wall never see uncommitted data.
        for class_id, wall in components.items():
            if not tracker.logs[class_id].settled_through(wall):
                self._note_delay(class_id, wall)
                self._arm_gate(base_time, class_id)
                return None
        self._retry_gate = None
        released = TimeWall(
            start_class=self.start_class,
            base_time=base_time,
            release_ts=self._clock.now,
            components=components,
            seq=self.total_released + 1,
        )
        self.released.append(released)
        self.total_released += 1
        self._pending_base = None
        if self._sink is not None:
            delayed_class, delayed_txn = self._last_delay or (None, None)
            self._sink.emit(
                WallReleasedEvent(
                    step=self._step(),
                    ts=self._clock.now,
                    wall_id=released.seq,
                    base_time=base_time,
                    release_ts=released.release_ts,
                    components=dict(components),
                    delayed_by_class=delayed_class,
                    delayed_by_txn=delayed_txn,
                )
            )
        self._last_delay = None
        return released

    def _arm_gate(
        self, base_time: Timestamp, class_id: Optional[SegmentId]
    ) -> None:
        """Remember which class blocked the attempt at ``base_time`` so
        retries can be skipped until that class closes an interval."""
        if class_id is None:
            self._retry_gate = None
            return
        log = self._tracker.logs.get(class_id)
        if log is None:
            self._retry_gate = None
            return
        self._retry_gate = (base_time, class_id, log.closures)

    def _note_delay(
        self, class_id: Optional[SegmentId], bound: Timestamp
    ) -> None:
        """A release attempt failed: remember which class (and whose
        open transaction) held it back, for the eventual release event."""
        self.computations_blocked += 1
        if self._sink is None or class_id is None:
            return
        txn_id: Optional[int] = None
        log = self._tracker.logs.get(class_id)
        if log is not None:
            culprit = log.oldest_open(bound)
            if culprit is None:
                culprit = log.oldest_open()
            if culprit is not None:
                txn_id = culprit[0]
        self._last_delay = (class_id, txn_id)

    @property
    def pending_base(self) -> Optional[Timestamp]:
        """Base time of the wall computation in flight (``None`` = idle)."""
        return self._pending_base

    @property
    def blocking_class(self) -> Optional[SegmentId]:
        """The class the armed retry gate waits on for the pending base.

        ``None`` when no computation is pending, when no gate is armed,
        or when the gate belongs to an older base — callers must then
        assume the next :meth:`poll` could succeed.
        """
        gate = self._retry_gate
        if gate is None or gate[0] != self._pending_base:
            return None
        return gate[1]

    # ------------------------------------------------------------------
    # Serving read-only transactions
    # ------------------------------------------------------------------
    def wall_for(self, initiation_ts: Timestamp) -> Optional[TimeWall]:
        """The newest wall released strictly before ``initiation_ts``.

        Protocol C: ``RT(TW) = max`` over walls with ``RT < I(t)``.
        Returns ``None`` when no wall qualifies yet — the caller blocks
        the transaction until one is released.  ``released`` is kept
        ascending in ``release_ts``, so this is one bisection, not the
        linear scan a long wall history would make of it.
        """
        position = bisect.bisect_left(
            self.released,
            initiation_ts,
            key=lambda wall: wall.release_ts,
        )
        if position == 0:
            return None
        return self.released[position - 1]

    def snapshot(self, wall: TimeWall) -> WallSnapshot:
        """The shared :class:`WallSnapshot` of ``wall`` (built once)."""
        snap = self._snapshots.get(wall.release_ts)
        if snap is None or snap.wall is not wall:
            snap = WallSnapshot(wall)
            self._snapshots[wall.release_ts] = snap
        return snap

    # ------------------------------------------------------------------
    # Lifecycle: pinning and retirement
    # ------------------------------------------------------------------
    def pin(self, wall: TimeWall, txn_id: Optional[int] = None) -> None:
        """Mark ``wall`` as being read below; it survives retirement."""
        self._pins[wall.release_ts] = self._pins.get(wall.release_ts, 0) + 1
        if self._sink is not None:
            self._sink.emit(
                WallPinnedEvent(
                    step=self._step(),
                    ts=self._clock.now,
                    wall_id=wall.seq,
                    txn_id=txn_id,
                )
            )

    def unpin(self, wall: TimeWall, txn_id: Optional[int] = None) -> None:
        """Drop one pin of ``wall`` (reader finished)."""
        count = self._pins.get(wall.release_ts)
        if count is None:
            return  # defensive: white-box tests clear released walls
        if count <= 1:
            del self._pins[wall.release_ts]
        else:
            self._pins[wall.release_ts] = count - 1
        if self._sink is not None:
            self._sink.emit(
                WallUnpinnedEvent(
                    step=self._step(),
                    ts=self._clock.now,
                    wall_id=wall.seq,
                    txn_id=txn_id,
                )
            )

    def pinned_walls(self) -> int:
        """Number of distinct release timestamps currently pinned."""
        return len(self._pins)

    def retire(self, keep: Iterable[Timestamp] = ()) -> int:
        """Drop every released wall that is neither pinned, the newest,
        nor named in ``keep`` (release timestamps of walls still
        servable to an admissible reader).  Returns the number retired.

        Safety: a Protocol C reader only ever dereferences the wall it
        pinned (kept), a future reader is handed the newest wall or a
        ``wall_for(I(t))`` the caller lists in ``keep`` — so retired
        walls are exactly those no present or future reader can be
        handed, and Theorem 2 is untouched (DESIGN.md §8).
        """
        if len(self.released) <= 1:
            return 0
        keep_ts = set(keep)
        keep_ts.update(self._pins)
        keep_ts.add(self.released[-1].release_ts)
        survivors = [
            wall for wall in self.released if wall.release_ts in keep_ts
        ]
        retired = len(self.released) - len(survivors)
        if retired:
            if self._sink is not None:
                dropped = [
                    wall.seq
                    for wall in self.released
                    if wall.release_ts not in keep_ts
                ]
                self._sink.emit(
                    WallRetiredEvent(
                        step=self._step(),
                        ts=self._clock.now,
                        wall_ids=dropped,
                        count=retired,
                    )
                )
            self.released = survivors
            self.total_retired += retired
            if self._snapshots:
                live = {wall.release_ts for wall in survivors}
                self._snapshots = {
                    ts: snap
                    for ts, snap in self._snapshots.items()
                    if ts in live
                }
        return retired
