"""Time walls for read-only transactions (paper Sections 5.1-5.2).

A *time wall* ``TW(m, s)`` is the family ``{ E_s^i(m) : all classes i }``
— one wall component per segment.  Lemma 2.1 shows no dependency can
cross the wall from the old side to the new side, so a read-only
transaction that reads, in every segment, the latest version below that
segment's component observes a consistent database state (Theorem 2).

Release discipline (Section 5.2): the system periodically computes a
fresh wall — starting class ``T_s`` chosen among the lowest classes,
``m`` = current time — and *releases* it once every ``C_late`` involved
is computable.  Read-only transactions use the newest wall released
before their initiation.

Settlement clarification (DESIGN.md §7): for the "never wait, never
register" claim to hold on the reader side, every wall component must
also be *settled* — no transaction of class ``i`` with initiation below
``E_s^i(m)`` may still be running at release time, otherwise a reader
could meet an uncommitted version below the wall.  Classes entered by
an up-hop are settled by construction of ``I_old``; for the starting
class and classes entered by down-hops we wait, exactly as the paper
already waits for ``C_late`` computability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.activity import ActivityTracker
from repro.core.graph import Node
from repro.errors import ReproError
from repro.txn.clock import LogicalClock, Timestamp
from repro.txn.transaction import SegmentId


@dataclass(frozen=True)
class TimeWall:
    """One released time wall.

    ``components[i]`` is ``E_s^i(m)``; ``release_ts`` is ``RT(TW(m,s))``.
    """

    start_class: SegmentId
    base_time: Timestamp
    release_ts: Timestamp
    components: dict[SegmentId, Timestamp]

    def component(self, segment: SegmentId) -> Timestamp:
        wall = self.components.get(segment)
        if wall is None:
            raise ReproError(f"time wall has no component for {segment!r}")
        return wall

    def __str__(self) -> str:
        parts = ", ".join(
            f"{seg}<{wall}" for seg, wall in sorted(self.components.items())
        )
        return (
            f"TW(m={self.base_time}, s={self.start_class}, "
            f"RT={self.release_ts}: {parts})"
        )


class TimeWallManager:
    """Computes, releases and serves time walls (Protocol C support).

    Parameters
    ----------
    tracker:
        The activity tracker (owns the ``E`` function and the logs).
    clock:
        The scheduler's clock; release times come from here.
    interval:
        Release cadence in clock ticks: a new wall computation is
        attempted whenever at least ``interval`` ticks have passed since
        the last *attempt began*.  Smaller intervals give read-only
        transactions fresher data at higher computation cost — one of
        the ablation knobs in the benchmarks.
    start_class:
        Fixed ``T_s``; by default the first lowest-level class, per the
        paper's recommendation.
    """

    def __init__(
        self,
        tracker: ActivityTracker,
        clock: LogicalClock,
        interval: int = 10,
        start_class: Optional[SegmentId] = None,
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self._tracker = tracker
        self._clock = clock
        self.interval = interval
        lowest = tracker.index.lowest_classes()
        if start_class is None:
            if not lowest:
                raise ReproError("THG has no classes; cannot pick T_s")
            start_class = sorted(map(str, lowest))[0]
        if start_class not in tracker.logs:
            raise ReproError(f"unknown starting class {start_class!r}")
        self.start_class: SegmentId = start_class
        self.released: list[TimeWall] = []
        #: Base time of the wall currently being computed, if any.
        self._pending_base: Optional[Timestamp] = None
        self.attempts = 0
        self.computations_blocked = 0

    # ------------------------------------------------------------------
    # Release machinery
    # ------------------------------------------------------------------
    def poll(self) -> Optional[TimeWall]:
        """Drive the release loop; call after any commit/abort and on ticks.

        Starts a new wall computation when the cadence is due, retries a
        pending one, and returns the newly released wall when one
        completes (else ``None``).
        """
        now = self._clock.now
        if self._pending_base is None and self._cadence_due(now):
            self._pending_base = now
            self.attempts += 1
        if self._pending_base is None:
            return None
        return self._try_release(self._pending_base)

    def force_release(self) -> TimeWall:
        """Compute and release a wall at the current time, or fail loudly.

        Used by tests and by drivers that quiesce update activity first.
        """
        wall = self._try_release(self._clock.now)
        if wall is None:
            raise ReproError(
                "time wall not computable: some class has unfinished "
                "transactions below its component"
            )
        return wall

    def _cadence_due(self, now: Timestamp) -> bool:
        if self._pending_base is not None:
            last_base = self._pending_base
        elif self.released:
            last_base = self.released[-1].base_time
        else:
            return True  # nothing released yet: always worth trying
        return now - last_base >= self.interval

    def _try_release(self, base_time: Timestamp) -> Optional[TimeWall]:
        components: dict[SegmentId, Timestamp] = {}
        for class_id in self._tracker.logs:
            wall = self._tracker.try_e_func(
                self.start_class, class_id, base_time
            )
            if wall is None:
                self.computations_blocked += 1
                return None
            components[class_id] = wall
        # Settlement: every transaction below each component must have
        # finished, so readers at this wall never see uncommitted data.
        for class_id, wall in components.items():
            if not self._tracker.logs[class_id].settled_through(wall):
                self.computations_blocked += 1
                return None
        released = TimeWall(
            start_class=self.start_class,
            base_time=base_time,
            release_ts=self._clock.now,
            components=components,
        )
        self.released.append(released)
        self._pending_base = None
        return released

    # ------------------------------------------------------------------
    # Serving read-only transactions
    # ------------------------------------------------------------------
    def wall_for(self, initiation_ts: Timestamp) -> Optional[TimeWall]:
        """The newest wall released strictly before ``initiation_ts``.

        Protocol C: ``RT(TW) = max`` over walls with ``RT < I(t)``.
        Returns ``None`` when no wall qualifies yet — the caller blocks
        the transaction until one is released.
        """
        best: Optional[TimeWall] = None
        for wall in self.released:
            if wall.release_ts < initiation_ts:
                if best is None or wall.release_ts > best.release_ts:
                    best = wall
        return best
