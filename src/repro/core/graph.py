"""Graph theory for hierarchical database decomposition (paper Section 3.1).

The paper's topology requirement is phrased in terms of a *transitive
semi-tree* (TST):

* a **semi-tree** is a digraph with at most one undirected path between
  any pair of nodes — i.e. its underlying undirected (multi)graph is a
  forest;
* a **transitive semi-tree** is a digraph whose transitive reduction is
  a semi-tree (a semi-tree plus arbitrarily many transitively induced
  arcs).

Every arc of a semi-tree is a *critical arc*; a path made of critical
arcs alone is a *critical path*, and between any pair of nodes of a TST
there is at most one critical path (paper, Section 3.1 properties).

This module provides a small self-contained :class:`Digraph` (no
external dependency, so the whole decomposition theory is auditable in
one file) plus the recognition and path machinery the rest of the
library builds on.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Optional, Sequence

from repro.errors import PartitionError

Node = Hashable
Arc = tuple[Node, Node]


class Digraph:
    """A simple directed graph: unique nodes, no parallel arcs, no self-loops.

    Self-loops are rejected because the paper's DHG construction only
    creates arcs between *distinct* segments (``D_i -> D_j, i != j``).
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        arcs: Iterable[Arc] = (),
    ) -> None:
        self._succ: dict[Node, set[Node]] = {}
        self._pred: dict[Node, set[Node]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in arcs:
            self.add_arc(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_arc(self, u: Node, v: Node) -> None:
        if u == v:
            raise PartitionError(f"self-loop {u!r} -> {v!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        self._succ[u].add(v)
        self._pred[v].add(u)

    def remove_arc(self, u: Node, v: Node) -> None:
        self._succ[u].discard(v)
        self._pred[v].discard(u)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        return list(self._succ)

    @property
    def arcs(self) -> list[Arc]:
        return [(u, v) for u, targets in self._succ.items() for v in targets]

    def node_count(self) -> int:
        return len(self._succ)

    def arc_count(self) -> int:
        return sum(len(t) for t in self._succ.values())

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def has_arc(self, u: Node, v: Node) -> bool:
        return u in self._succ and v in self._succ[u]

    def successors(self, node: Node) -> set[Node]:
        return set(self._succ[node])

    def predecessors(self, node: Node) -> set[Node]:
        return set(self._pred[node])

    def copy(self) -> "Digraph":
        return Digraph(self.nodes, self.arcs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return (
            set(self.nodes) == set(other.nodes)
            and set(self.arcs) == set(other.arcs)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Digraph(nodes={self.nodes!r}, arcs={sorted(map(str, self.arcs))!r})"

    # ------------------------------------------------------------------
    # Acyclicity and ordering
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def find_cycle(self) -> Optional[list[Node]]:
        """Return the nodes of some directed cycle, or ``None`` if acyclic.

        Iterative three-colour DFS; the returned list is the cycle in
        order, without repeating the first node at the end.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in self._succ}
        parent: dict[Node, Optional[Node]] = {}

        for root in self._succ:
            if colour[root] != WHITE:
                continue
            stack: list[tuple[Node, Iterator[Node]]] = [
                (root, iter(self._succ[root]))
            ]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                    if colour[child] == GREY:
                        # Found a back arc node -> child: walk the cycle.
                        cycle = [node]
                        walk = node
                        while walk != child:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def topological_order(self) -> list[Node]:
        """Kahn's algorithm; raises :class:`PartitionError` on a cycle."""
        indegree = {node: len(self._pred[node]) for node in self._succ}
        queue = deque(sorted(
            (n for n, d in indegree.items() if d == 0), key=repr
        ))
        order: list[Node] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for child in sorted(self._succ[node], key=repr):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._succ):
            raise PartitionError("graph has a cycle; no topological order")
        return order

    # ------------------------------------------------------------------
    # Reachability, closure, reduction
    # ------------------------------------------------------------------
    def reachable_from(self, source: Node) -> set[Node]:
        """All nodes reachable from ``source`` by directed arcs (excl. source
        unless it lies on a cycle through itself, which cannot happen here)."""
        seen: set[Node] = set()
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for child in self._succ[node]:
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    def transitive_closure(self) -> "Digraph":
        closure = Digraph(self.nodes)
        for node in self._succ:
            for target in self.reachable_from(node):
                closure.add_arc(node, target)
        return closure

    def transitive_reduction(self) -> "Digraph":
        """The unique transitive reduction (graph must be acyclic).

        An arc ``u -> v`` is redundant iff ``v`` is reachable from some
        successor of ``u`` other than ``v`` itself.
        """
        if not self.is_acyclic():
            raise PartitionError(
                "transitive reduction is only defined for acyclic digraphs"
            )
        reduction = Digraph(self.nodes)
        reach: dict[Node, set[Node]] = {
            node: self.reachable_from(node) for node in self._succ
        }
        for u in self._succ:
            for v in self._succ[u]:
                redundant = any(
                    v in reach[w] for w in self._succ[u] if w != v
                )
                if not redundant:
                    reduction.add_arc(u, v)
        return reduction

    # ------------------------------------------------------------------
    # Undirected view
    # ------------------------------------------------------------------
    def undirected_neighbours(self, node: Node) -> set[Node]:
        return self._succ[node] | self._pred[node]

    def undirected_components(self) -> list[set[Node]]:
        seen: set[Node] = set()
        components = []
        for root in self._succ:
            if root in seen:
                continue
            component = {root}
            frontier = [root]
            while frontier:
                node = frontier.pop()
                for other in self.undirected_neighbours(node):
                    if other not in component:
                        component.add(other)
                        frontier.append(other)
            seen |= component
            components.append(component)
        return components


# ----------------------------------------------------------------------
# Semi-tree and transitive semi-tree recognition
# ----------------------------------------------------------------------
def is_semi_tree(graph: Digraph, require_connected: bool = False) -> bool:
    """Is ``graph`` a semi-tree (paper Section 3.1)?

    A semi-tree has **at most one undirected path between any pair of
    nodes**: treating every arc as an undirected edge (and antiparallel
    arc pairs ``u->v, v->u`` as two parallel edges, hence two paths),
    the graph must be a forest.  The paper's informal reading ("ignoring
    directions it appears to be a spanning tree") suggests connectivity;
    since nothing in the proofs uses it, connectivity is an optional
    extra check.
    """
    # Antiparallel pairs are two undirected paths between the same pair.
    for u, v in graph.arcs:
        if graph.has_arc(v, u):
            return False
    # Union-find forest check: an arc joining two already-connected
    # nodes closes an undirected cycle.
    parent: dict[Node, Node] = {node: node for node in graph.nodes}

    def find(node: Node) -> Node:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    for u, v in graph.arcs:
        root_u, root_v = find(u), find(v)
        if root_u == root_v:
            return False
        parent[root_u] = root_v

    if require_connected and graph.node_count() > 0:
        if len(graph.undirected_components()) != 1:
            return False
    return True


def is_transitive_semi_tree(graph: Digraph) -> bool:
    """Is ``graph`` a TST, i.e. is its transitive reduction a semi-tree?

    TSTs are necessarily acyclic (the paper places them strictly between
    directed trees and acyclic digraphs), so a cyclic graph fails.
    """
    if not graph.is_acyclic():
        return False
    return is_semi_tree(graph.transitive_reduction())


class SemiTreeIndex:
    """Precomputed path queries over a transitive semi-tree.

    The HDD protocols repeatedly ask for critical paths (``CP_i^j``) and
    undirected critical paths (``UCP_i^j``); this index computes the
    transitive reduction once and answers both queries from it.

    Raises :class:`PartitionError` if the input is not a TST.
    """

    def __init__(self, graph: Digraph) -> None:
        if not is_transitive_semi_tree(graph):
            raise PartitionError("graph is not a transitive semi-tree")
        self.graph = graph
        self.reduction = graph.transitive_reduction()
        self._cp_cache: dict[Arc, Optional[tuple[Node, ...]]] = {}
        self._ucp_cache: dict[Arc, Optional[tuple[Node, ...]]] = {}

    # -- critical arcs and paths ---------------------------------------
    def critical_arcs(self) -> list[Arc]:
        """The arcs of the underlying semi-tree."""
        return self.reduction.arcs

    def is_critical_arc(self, u: Node, v: Node) -> bool:
        return self.reduction.has_arc(u, v)

    def critical_path(self, i: Node, j: Node) -> Optional[tuple[Node, ...]]:
        """``CP_i^j``: the unique directed path of critical arcs from
        ``i`` to ``j``, as a node tuple ``(i, ..., j)``; ``None`` if no
        such path exists.  ``critical_path(i, i) == (i,)``.
        """
        key = (i, j)
        if key not in self._cp_cache:
            self._cp_cache[key] = self._find_critical_path(i, j)
        return self._cp_cache[key]

    def _find_critical_path(self, i: Node, j: Node) -> Optional[tuple[Node, ...]]:
        if i == j:
            return (i,)
        # In a semi-tree the undirected path is unique, so a directed
        # critical path exists iff the unique undirected path is
        # consistently directed i -> j.
        walk = self.undirected_critical_path(i, j)
        if walk is None:
            return None
        for u, v in zip(walk, walk[1:]):
            if not self.reduction.has_arc(u, v):
                return None
        return walk

    def is_higher(self, j: Node, i: Node) -> bool:
        """``T_j higher-than T_i`` (paper: ``T_j ^ T_i``): does ``CP_i^j``
        exist with ``i != j``?"""
        return i != j and self.critical_path(i, j) is not None

    def comparable(self, i: Node, j: Node) -> bool:
        """Are ``i`` and ``j`` on one critical path (either direction)?"""
        return (
            self.critical_path(i, j) is not None
            or self.critical_path(j, i) is not None
        )

    # -- undirected critical paths --------------------------------------
    def undirected_critical_path(
        self, i: Node, j: Node
    ) -> Optional[tuple[Node, ...]]:
        """``UCP_i^j``: the unique undirected path through critical arcs,
        as a node tuple ``(i, ..., j)``; ``None`` if ``i`` and ``j`` are
        in different components.  ``undirected_critical_path(i, i) == (i,)``.
        """
        key = (i, j)
        if key not in self._ucp_cache:
            self._ucp_cache[key] = self._find_ucp(i, j)
        return self._ucp_cache[key]

    def _find_ucp(self, i: Node, j: Node) -> Optional[tuple[Node, ...]]:
        if i == j:
            return (i,)
        # BFS over the undirected view of the reduction; the tree
        # property makes the found path the unique one.
        parent: dict[Node, Node] = {i: i}
        queue = deque([i])
        while queue:
            node = queue.popleft()
            if node == j:
                break
            for other in self.reduction.undirected_neighbours(node):
                if other not in parent:
                    parent[other] = node
                    queue.append(other)
        if j not in parent:
            return None
        path = [j]
        while path[-1] != i:
            path.append(parent[path[-1]])
        path.reverse()
        return tuple(path)

    def path_on_one_critical_path(self, classes: Sequence[Node]) -> bool:
        """Do all of ``classes`` lie on one critical path (Section 5.0)?

        True iff there exist bottom and top elements such that the
        critical path from bottom to top passes through every class in
        the set.
        """
        unique = list(dict.fromkeys(classes))
        if len(unique) <= 1:
            return True
        for bottom in unique:
            for top in unique:
                path = self.critical_path(bottom, top)
                if path is not None and set(unique) <= set(path):
                    return True
        return False

    def lowest_of(self, classes: Sequence[Node]) -> Node:
        """The bottom class of a set lying on one critical path."""
        unique = list(dict.fromkeys(classes))
        for bottom in unique:
            if all(
                self.critical_path(bottom, other) is not None
                for other in unique
            ):
                return bottom
        raise PartitionError(
            f"classes {unique!r} do not lie on one critical path"
        )

    def lowest_classes(self) -> list[Node]:
        """Classes with no incoming critical arc (candidates for the
        Protocol C starting class ``T_s``)."""
        return [
            node
            for node in self.reduction.nodes
            if not self.reduction.predecessors(node)
        ]
