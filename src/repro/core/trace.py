"""Decomposition via data analysis of observed traces (paper §7.2.2).

:func:`derive_partition` (in :mod:`repro.core.analysis`) needs
granule-level transaction profiles; in practice nobody writes those by
hand — they come from *watching the workload run*.  This module closes
that loop: run the application under any scheduler (typically a flat
baseline like 2PL, i.e. *before* adopting HDD), collect the recorded
schedule, fold each transaction's accesses into its transaction *type*,
and hand the result to the §7.2 pipeline.

The outcome is the full migration story the paper sketches: observe a
legacy system -> infer the hierarchy its transactions already follow ->
validate/coarsen it into a TST -> rerun under HDD with the derived
partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.core.analysis import (
    DerivedPartition,
    GranuleProfile,
    derive_partition,
)
from repro.errors import ReproError
from repro.txn.schedule import Action, Schedule
from repro.txn.transaction import GranuleId


@dataclass
class TraceProfile:
    """Accumulated accesses of one transaction *type* across a trace."""

    name: str
    reads: set[GranuleId] = field(default_factory=set)
    writes: set[GranuleId] = field(default_factory=set)
    transactions: int = 0

    def freeze(self) -> GranuleProfile:
        # A granule both read and written counts as written (the DHG
        # only cares about the write set and the access set).
        return GranuleProfile(
            self.name,
            writes=frozenset(self.writes),
            reads=frozenset(self.reads - self.writes),
        )


def collect_trace_profiles(
    schedule: Schedule,
    type_of: Mapping[int, str] | Callable[[int], Optional[str]],
    committed_only: bool = True,
) -> list[TraceProfile]:
    """Fold a recorded schedule into per-transaction-type profiles.

    ``type_of`` maps transaction ids to type names; transactions it
    maps to ``None`` (or omits) are skipped — e.g. background jobs you
    do not want shaping the decomposition.
    """
    lookup: Callable[[int], Optional[str]]
    if callable(type_of):
        lookup = type_of
    else:
        lookup = type_of.get  # type: ignore[assignment]

    committed = schedule.committed_txn_ids() if committed_only else None
    profiles: dict[str, TraceProfile] = {}
    seen_txns: dict[str, set[int]] = {}
    for step in schedule.steps:
        if step.action not in (Action.READ, Action.WRITE):
            continue
        if committed is not None and step.txn_id not in committed:
            continue
        type_name = lookup(step.txn_id)
        if type_name is None:
            continue
        profile = profiles.setdefault(type_name, TraceProfile(type_name))
        seen_txns.setdefault(type_name, set()).add(step.txn_id)
        assert step.granule is not None
        if step.action is Action.WRITE:
            profile.writes.add(step.granule)
        else:
            profile.reads.add(step.granule)
    for name, profile in profiles.items():
        profile.transactions = len(seen_txns[name])
    return sorted(profiles.values(), key=lambda p: p.name)


def derive_partition_from_trace(
    schedule: Schedule,
    type_of: Mapping[int, str] | Callable[[int], Optional[str]],
) -> DerivedPartition:
    """The §7.2.2 pipeline end to end: trace -> profiles -> TST partition.

    Raises :class:`ReproError` if the trace contains no classified
    committed accesses.
    """
    traced = collect_trace_profiles(schedule, type_of)
    if not traced:
        raise ReproError("trace contains no classified committed accesses")
    return derive_partition([profile.freeze() for profile in traced])
