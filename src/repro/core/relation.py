"""The *topologically follows* relation and the partition synchronization
rule (paper Section 4.3).

``t1 => t2`` ("t1 topologically follows t2") is defined for transactions
whose classes lie on one critical path of the THG:

1. same class:            ``I(t1) >  I(t2)``
2. ``T_i`` higher (t1 up): ``I(t1) >= A_j^i(I(t2))``
3. ``T_j`` higher (t2 up): ``I(t2) <  A_i^j(I(t1))``

(with ``t1 in T_i``, ``t2 in T_j``).  The relation is anti-symmetric and
critical-path transitive (paper Properties 1.1/1.2 — both checked by
property tests).

A schedule enforces the **partition synchronization rule** (PSR) when
every arc ``t1 -> t2`` of its transaction dependency graph satisfies
``t1 => t2``.  Theorem 1 then gives acyclicity.  :func:`audit_psr`
re-checks an executed schedule against the rule — this is how the tests
confirm the HDD scheduler enforces what Theorem 1 needs, independently
of the acyclicity oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.activity import ActivityTracker
from repro.errors import ReproError
from repro.txn.clock import Timestamp
from repro.txn.depgraph import build_dependency_graph
from repro.txn.schedule import Schedule
from repro.txn.transaction import SegmentId


def topologically_follows(
    t1_class: SegmentId,
    t1_initiation: Timestamp,
    t2_class: SegmentId,
    t2_initiation: Timestamp,
    tracker: ActivityTracker,
) -> bool:
    """Does ``t1 => t2`` hold?

    Raises :class:`ReproError` if the two classes are not on one
    critical path (the relation is undefined there, paper Section 4.3).
    """
    if t1_class == t2_class:
        return t1_initiation > t2_initiation
    if tracker.index.is_higher(t1_class, t2_class):
        # Case 2: t1's class is higher; compare against A_{j}^{i}(I(t2)).
        wall = tracker.a_func(t2_class, t1_class, t2_initiation)
        return t1_initiation >= wall
    if tracker.index.is_higher(t2_class, t1_class):
        # Case 3: t2's class is higher; compare against A_{i}^{j}(I(t1)).
        wall = tracker.a_func(t1_class, t2_class, t1_initiation)
        return t2_initiation < wall
    raise ReproError(
        f"topologically-follows is undefined: classes {t1_class!r} and "
        f"{t2_class!r} are not on one critical path"
    )


@dataclass(frozen=True)
class PSRViolation:
    """One dependency arc that breaks the partition synchronization rule."""

    later_txn: int
    earlier_txn: int
    later_class: SegmentId
    earlier_class: SegmentId
    granule: str
    kind: str

    def __str__(self) -> str:
        return (
            f"t{self.later_txn}({self.later_class}) -> "
            f"t{self.earlier_txn}({self.earlier_class}) via {self.kind} "
            f"on {self.granule} does not satisfy =>"
        )


def audit_psr(
    schedule: Schedule,
    txn_classes: dict[int, SegmentId],
    txn_initiations: dict[int, Timestamp],
    tracker: ActivityTracker,
    since: Timestamp = 0,
) -> list[PSRViolation]:
    """Check every TG arc of ``schedule`` against ``=>``.

    ``txn_classes``/``txn_initiations`` map committed transaction ids to
    their class and ``I(t)``; transactions missing from ``txn_classes``
    (read-only transactions, the bootstrap writer) are skipped — the PSR
    is a statement about update transactions (Theorem 1), read-only
    transactions are covered by Theorem 2 instead.  Classes the tracker
    does not know (e.g. segments merged away by a later dynamic
    restructuring) are skipped too: the PSR is an invariant of one
    partition epoch, so dependencies involving an earlier epoch's
    classes cannot be judged against the current hierarchy.  For the
    same reason, pass ``since`` = the time of the last restructuring
    (``RestructuringHDDScheduler.restructured_at``) to skip
    transactions that ran under earlier epochs' walls — the merged
    activity logs yield *smaller* walls than those epochs enforced, so
    judging old reads against them produces false violations.

    Returns the (hopefully empty) list of violations.
    """
    graph, deps = build_dependency_graph(schedule, mode="paper")
    known = set(tracker.logs)
    violations = []
    for dep in deps:
        later_class = txn_classes.get(dep.later)
        earlier_class = txn_classes.get(dep.earlier)
        if later_class is None or earlier_class is None:
            continue
        if later_class not in known or earlier_class not in known:
            continue  # pre-restructure epoch
        later_init = txn_initiations[dep.later]
        earlier_init = txn_initiations[dep.earlier]
        if later_init < since or earlier_init < since:
            continue  # ran under an earlier partition epoch's walls
        try:
            follows = topologically_follows(
                later_class, later_init, earlier_class, earlier_init, tracker
            )
        except ReproError:
            # A direct dependency between classes not on one critical
            # path cannot arise from granule sharing in a TST partition;
            # flag it as a violation rather than crash the audit.
            follows = False
        if not follows:
            violations.append(
                PSRViolation(
                    dep.later,
                    dep.earlier,
                    later_class,
                    earlier_class,
                    dep.granule,
                    dep.kind,
                )
            )
    return violations
