"""The HDD concurrency-control scheduler (paper Sections 4.2 and 5.2).

Dispatch per access, for a transaction ``t`` touching granule ``d`` in
segment ``D_j``:

* **update transaction of class** ``T_i``:

  - ``i == j`` -> **Protocol B**: the intra-class timestamp-ordering
    engine (basic TO or Reed MVTO, configurable);
  - ``j`` higher than ``i`` -> **Protocol A**: serve the newest version
    with write timestamp strictly below the activity-link wall
    ``A_i^j(I(t))``.  No read timestamp, no lock, no blocking — the
    wall guarantees every version below it is final;
  - anything else -> :class:`~repro.errors.ProtocolViolation` (the
    declared profile promised not to do this; see
    :mod:`repro.core.restructure` for the dynamic-restructuring
    extension that admits such transactions anyway).

* **read-only transaction** (Section 5):

  - if its declared read segments lie on one critical path, it behaves
    like an update transaction in a *fictitious class* immediately
    below the lowest class of that path: Protocol A walls
    ``A_fict^j(I(t))``, never blocking;
  - otherwise -> **Protocol C**: read below the components of the
    newest released time wall (blocking only until the first wall is
    released).

Commits are never blocked and never rejected: every conflict was
resolved at access time.  Aborted transactions have their versions
expunged so walls only ever expose final data.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.activity import ActivityTracker
from repro.core.intraclass import ENGINES, IntraClassEngine
from repro.core.partition import HierarchicalPartition
from repro.core.timewall import TimeWall, TimeWallManager, WallSnapshot
from repro.errors import ProtocolViolation, ReproError
from repro.obs.events import GCPassEvent
from repro.scheduling import (
    WAIT_TIMEWALL,
    BaseScheduler,
    Outcome,
    blocked,
    granted,
)
from repro.storage.gc import GCReport, WatermarkGC
from repro.storage.store import MultiVersionStore
from repro.txn.clock import LogicalClock, Timestamp
from repro.txn.transaction import (
    GranuleId,
    SegmentId,
    Transaction,
    TransactionKind,
)


class HDDScheduler(BaseScheduler):
    """Hierarchical-database-decomposition concurrency control.

    Parameters
    ----------
    partition:
        A validated :class:`HierarchicalPartition`; profiles passed to
        :meth:`begin` must come from it.
    protocol_b:
        Intra-class engine: ``"mvto"`` (default) or ``"to"``.
    wall_interval:
        Release cadence of the Protocol C time-wall manager, in clock
        ticks.
    snapshot_cache:
        Advance per-chain frozen-prefix marks (the newest released
        wall's components) so wall reads below them take the frozen path:
        hot walls (queried more than once store-wide, per the
        :class:`~repro.storage.chain.WallPopularity` admission gate)
        are served from the permanent snapshot cache, cold walls cost
        one bisection.  On by default; turning it off pins every
        chain's ``frozen_below`` at 0, which the equivalence property
        tests use as the reference engine.
    """

    name = "hdd"

    def __init__(
        self,
        partition: HierarchicalPartition,
        protocol_b: str = "mvto",
        wall_interval: int = 25,
        store: Optional[MultiVersionStore] = None,
        clock: Optional[LogicalClock] = None,
        fresh_walls: bool = False,
        snapshot_cache: bool = True,
    ) -> None:
        super().__init__(store=store, clock=clock)
        self.partition = partition
        self.tracker = ActivityTracker(partition.index)
        self.walls = TimeWallManager(
            self.tracker, self.clock, interval=wall_interval
        )
        engine_cls = ENGINES.get(protocol_b)
        if engine_cls is None:
            raise ValueError(
                f"unknown protocol_b {protocol_b!r}; choose from "
                f"{sorted(ENGINES)}"
            )
        self.protocol_b: IntraClassEngine = engine_cls(
            self.store, self.schedule, self.stats
        )
        #: Declared read segments of read-only transactions.
        self._ro_segments: dict[int, Optional[frozenset[SegmentId]]] = {}
        #: Shared snapshot of the time wall pinned by each Protocol C
        #: transaction.  Pinning is mirrored into the wall manager so
        #: retirement never drops a wall someone is still reading below;
        #: readers of the same wall share one resolved snapshot.
        self._ro_walls: dict[int, WallSnapshot] = {}
        #: Cached per-transaction walls, ``txn_id -> segment -> wall``
        #: (Protocol A walls for update transactions, fictitious-class
        #: walls for declared-path readers).  The A function is
        #: deterministic for a fixed (class, segment, I), so caching is
        #: purely an optimisation; the nesting makes :meth:`_forget` one
        #: dict pop instead of a sweep over every segment.
        self._a_wall_cache: dict[int, dict[SegmentId, Timestamp]] = {}
        #: Attempt a wall release at every read-only begin, trading wall
        #: computation for snapshot freshness (used by the Database
        #: facade; the paper's periodic cadence is the default).
        self.fresh_walls = fresh_walls
        self.snapshot_cache = snapshot_cache
        #: Per-segment frozen-prefix marks: the components of the newest
        #: released time wall, lazily pushed into chains at read time.
        #: A released component is permanently settled — the invariant
        #: that lets pinned readers re-read below it forever — so every
        #: version below it is committed and no future install can land
        #: under it (:meth:`VersionChain.advance_frozen` debug-checks
        #: the delta rather than trusting this).  Crucially the marks
        #: cost nothing to maintain: the release already computed the
        #: components, so refreshing is a three-entry dict merge, where
        #: recomputing ``I_old`` per segment walked the activity log and
        #: was itself the biggest cached-path overhead.
        self._frozen_marks: dict[SegmentId, Timestamp] = {}
        #: Static watermark evaluation plan: ``(i, j, hop)`` triples in
        #: dependency order (see :meth:`safe_watermarks`); built once,
        #: the partition being immutable.
        self._wm_plan: Optional[
            list[tuple[SegmentId, SegmentId, SegmentId]]
        ] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _make_transaction(self, txn_id, initiation_ts, kind, profile):
        if kind is TransactionKind.READ_ONLY:
            if self.fresh_walls:
                try:
                    self.walls.force_release()
                except ReproError:
                    pass  # unsettled right now; the last wall serves
            segments: Optional[frozenset[SegmentId]] = None
            if profile is not None:
                declared = self.partition.profile(profile)
                if not declared.is_read_only:
                    raise ProtocolViolation(
                        f"profile {profile!r} is an update profile but the "
                        "transaction was begun read-only"
                    )
                segments = declared.reads
            self._ro_segments[txn_id] = segments
            return Transaction(txn_id, initiation_ts, kind)
        if profile is None:
            raise ProtocolViolation(
                "HDD update transactions must name a transaction profile"
            )
        declared = self.partition.profile(profile)
        if declared.is_read_only:
            raise ProtocolViolation(
                f"profile {profile!r} is read-only; begin with read_only=True"
            )
        class_id = declared.root_segment
        txn = Transaction(txn_id, initiation_ts, kind, class_id=class_id)
        self.tracker.record_begin(class_id, txn_id, initiation_ts)
        return txn

    def begin(self, profile=None, read_only=False) -> Transaction:
        txn = super().begin(profile=profile, read_only=read_only)
        self.poll_walls()
        return txn

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def set_sink(self, sink) -> None:
        super().set_sink(sink)
        self.walls.set_sink(self._sink, step_source=self)

    def _protocol_used(self, txn, granule, op) -> Optional[str]:
        """Tag granted accesses with the paper's A/B/C dispatch.

        Only evaluated when tracing is on; mirrors the dispatch in
        :meth:`_do_read` / :meth:`_do_write` without re-running it.
        """
        if op == "write":
            return "B"
        if not txn.is_read_only:
            segment = self.partition.segment_of(granule)
            return "B" if segment == txn.class_id else "A"
        declared = self._ro_segments.get(txn.txn_id)
        if declared is not None and (
            self.partition.read_only_on_one_critical_path(declared)
        ):
            return "A"  # fictitious-class walls, Section 5.0
        return "C"

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _do_read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        self._require_active(txn)
        segment = self.partition.segment_of(granule)
        if txn.is_read_only:
            return self._read_only_read(txn, granule, segment)
        assert txn.class_id is not None
        if segment == txn.class_id:
            outcome = self.protocol_b.read(txn, granule)
            if outcome.aborted:
                self._cleanup_abort(txn, outcome.reason or "protocol B rejection")
            return outcome
        if self.partition.is_higher(segment, txn.class_id):
            return self._protocol_a_read(txn, granule, segment)
        raise ProtocolViolation(
            f"txn {txn.txn_id} (class {txn.class_id!r}) may not read "
            f"segment {segment!r}: it is not higher than its root"
        )

    def _protocol_a_read(
        self, txn: Transaction, granule: GranuleId, segment: SegmentId
    ) -> Outcome:
        """Protocol A: wall ``A_i^j(I(t))``, no registration, no waiting."""
        cache = self._a_wall_cache.setdefault(txn.txn_id, {})
        wall = cache.get(segment)
        if wall is None:
            assert txn.class_id is not None
            wall = self.tracker.a_func(
                txn.class_id, segment, txn.initiation_ts
            )
            cache[segment] = wall
        return self._read_below_wall(txn, granule, wall, segment)

    def _read_only_read(
        self, txn: Transaction, granule: GranuleId, segment: SegmentId
    ) -> Outcome:
        declared = self._ro_segments.get(txn.txn_id)
        if declared is not None:
            if segment not in declared:
                raise ProtocolViolation(
                    f"read-only txn {txn.txn_id} declared segments "
                    f"{sorted(declared)} but read {segment!r}"
                )
            if self.partition.read_only_on_one_critical_path(declared):
                cache = self._a_wall_cache.setdefault(txn.txn_id, {})
                wall = cache.get(segment)
                if wall is None:
                    bottom = self.partition.index.lowest_of(list(declared))
                    wall = self.tracker.a_func_from_below(
                        bottom, segment, txn.initiation_ts
                    )
                    cache[segment] = wall
                return self._read_below_wall(txn, granule, wall, segment)
        return self._protocol_c_read(txn, granule, segment)

    def _protocol_c_read(
        self, txn: Transaction, granule: GranuleId, segment: SegmentId
    ) -> Outcome:
        snap = self._ro_walls.get(txn.txn_id)
        if snap is None:
            wall_obj: Optional[TimeWall]
            if self.fresh_walls and self.walls.released:
                # Freshness mode: pin the newest wall outright (any
                # released wall is a consistent cut; the RT < I(t)
                # rule only matters for the paper's cadence semantics).
                wall_obj = self.walls.released[-1]
            else:
                wall_obj = self.walls.wall_for(txn.initiation_ts)
            if wall_obj is None and self.walls.released:
                # No wall released strictly before I(t): fall back to
                # the newest released wall.  Theorem 2 holds for *any*
                # released wall; the RT < I(t) rule is a freshness
                # heuristic only (DESIGN.md §7).
                wall_obj = self.walls.released[-1]
            if wall_obj is None:
                self.poll_walls()
                wall_obj = self.walls.wall_for(self.clock.now + 1)
            if wall_obj is None:
                self.stats.wall_blocks += 1
                return blocked(waiting_for=WAIT_TIMEWALL)
            snap = self.walls.snapshot(wall_obj)
            self._ro_walls[txn.txn_id] = snap
            self.walls.pin(wall_obj, txn_id=txn.txn_id)
        return self._read_below_wall(
            txn, granule, snap.component(segment), segment
        )

    def _read_below_wall(
        self,
        txn: Transaction,
        granule: GranuleId,
        wall: Timestamp,
        segment: SegmentId,
    ) -> Outcome:
        """Common Protocol A / fictitious-class / Protocol C visibility."""
        chain = self.store.chain(granule)
        if self.snapshot_cache and wall > chain.frozen_below:
            mark = self._frozen_marks.get(segment)
            if mark is not None and mark > chain.frozen_below:
                chain.advance_frozen(mark)
        version = chain.latest_before(wall, committed_only=False)
        if version is None:  # pragma: no cover - bootstrap prevents this
            raise ReproError(f"{granule}: no version below wall {wall}")
        if not version.committed:
            # The wall machinery guarantees versions below walls are
            # settled; hitting this means a protocol bug, not a wait.
            raise ReproError(
                f"unsettled version {granule}^{version.ts} below wall "
                f"{wall} — wall settlement invariant broken"
            )
        txn.record_read(granule)
        self.stats.reads += 1
        self.stats.unregistered_reads += 1
        self.schedule.record_read(txn.txn_id, granule, version.ts)
        return granted(value=version.value, version_ts=version.ts)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _do_write(
        self, txn: Transaction, granule: GranuleId, value: object
    ) -> Outcome:
        self._require_active(txn)
        if txn.is_read_only:
            raise ProtocolViolation(
                f"read-only txn {txn.txn_id} attempted a write"
            )
        segment = self.partition.segment_of(granule)
        if segment != txn.class_id:
            raise ProtocolViolation(
                f"txn {txn.txn_id} (class {txn.class_id!r}) may not write "
                f"segment {segment!r}: updates stay in the root segment"
            )
        outcome = self.protocol_b.write(txn, granule, value)
        if outcome.aborted:
            self._cleanup_abort(txn, outcome.reason or "protocol B rejection")
        return outcome

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------
    def _do_commit(self, txn: Transaction) -> Outcome:
        self._require_active(txn)
        if txn.class_id is not None:
            veto = self.protocol_b.commit_check(txn)
            if veto is not None:
                if veto.aborted:
                    self._cleanup_abort(
                        txn, veto.reason or "commit-time rejection"
                    )
                return veto
        commit_ts = self._finish_commit(txn)
        for granule in txn.write_set:
            self.store.chain(granule).commit_version(
                txn.initiation_ts, commit_ts
            )
        if txn.class_id is not None:
            self.tracker.record_end(txn.class_id, txn.txn_id, commit_ts)
        self.protocol_b.forget(txn.txn_id)
        self._forget(txn)
        self.poll_walls()
        return granted(version_ts=commit_ts)

    def abort(self, txn: Transaction, reason: str) -> None:
        self._require_active(txn)
        self._cleanup_abort(txn, reason)

    def _cleanup_abort(self, txn: Transaction, reason: str) -> None:
        """Expunge versions, close the activity interval, record the abort.

        Called both for voluntary aborts and for Protocol B rejections
        (in the latter case the engine already returned ``aborted`` and
        this finishes the job).
        """
        for granule in txn.write_set:
            chain = self.store.chain(granule)
            if chain.has_version(txn.initiation_ts):
                chain.remove(txn.initiation_ts)
        abort_ts = self._finish_abort(txn, reason)
        if txn.class_id is not None:
            self.tracker.record_end(txn.class_id, txn.txn_id, abort_ts)
        self.protocol_b.forget(txn.txn_id)
        self._forget(txn)
        self.poll_walls()

    def _forget(self, txn: Transaction) -> None:
        self._ro_segments.pop(txn.txn_id, None)
        pinned = self._ro_walls.pop(txn.txn_id, None)
        if pinned is not None:
            self.walls.unpin(pinned.wall, txn_id=txn.txn_id)
        self._a_wall_cache.pop(txn.txn_id, None)

    # ------------------------------------------------------------------
    # Time walls and garbage collection
    # ------------------------------------------------------------------
    def poll_walls(self) -> Optional[TimeWall]:
        """Drive the Protocol C wall-release loop."""
        released = self.walls.poll()
        if released is not None:
            self._advance_frozen_marks()
        return released

    def _advance_frozen_marks(self) -> None:
        """Adopt the newest released wall's components as frozen marks.

        Called at wall-release cadence (and from GC).  Every *released*
        wall a Protocol C reader can hold has components at or below the
        newest one's (components are monotone in the wall base time), so
        once a chain's ``frozen_below`` catches up those reads all take
        the frozen path — and the few distinct component values are
        exactly the walls readers share, which is what makes cached
        entries reusable.  Per-transaction Protocol A walls can run
        ahead of the mark; those reads simply scan, as they would
        uncached.
        """
        if not self.snapshot_cache or not self.walls.released:
            return
        marks = self._frozen_marks
        for j, component in self.walls.released[-1].components.items():
            if component > marks.get(j, 0):
                marks[j] = component

    def retire_walls(self) -> int:
        """Retire released walls no present or future reader can be handed.

        A wall is *live* iff it is pinned by an active Protocol C
        transaction, is the newest released wall (the only one a future
        reader can be handed — components are monotone in the wall base
        time), or is ``wall_for(I(t))`` of an active read-only
        transaction that has not pinned yet (walls released from now on
        carry ``RT > I(t)``, so that choice is already fixed).
        Everything else is dropped from the manager; returns the number
        retired (DESIGN.md §8).
        """
        keep: set[Timestamp] = set()
        for txn in self.active_transactions():
            if not txn.is_read_only or txn.txn_id in self._ro_walls:
                continue
            candidate = self.walls.wall_for(txn.initiation_ts)
            if candidate is not None:
                keep.add(candidate.release_ts)
        return self.walls.retire(keep)

    def safe_watermarks(self) -> dict[SegmentId, Timestamp]:
        """Per-segment GC watermarks no present or future read can undercut.

        For each segment ``j`` the watermark is the minimum over:

        * ``A_i^j(now)`` for every class ``i`` below ``j`` — by
          monotonicity of ``I_old`` (hence of ``A`` in its time
          argument) this lower-bounds the wall of every future update
          transaction, and active transactions' exact walls are
          included separately;
        * ``A`` *from a fictitious class below* every ``i`` below ``j``
          (i.e. ``A_i^j(I_old_i(now))``) — a future declared-path
          read-only transaction's first hop applies ``I_old`` at its
          bottom class, which can reach back to a long-running
          transaction's initiation, below ``A_i^j(now)``;
        * exact walls of active update transactions and declared-path
          read-only transactions (served from the per-transaction wall
          cache, so repeated GC passes do not recompute them);
        * wall components pinned by active Protocol C transactions, the
          ``wall_for(I(t))`` of active Protocol C transactions that have
          not pinned yet, and the latest released wall (the only wall a
          future Protocol C reader can be handed, components being
          monotone in the wall base time) — retired walls are never
          consulted;
        * ``I_old_j(now)`` — intra-class MVTO readers need versions at
          or below their own initiation timestamps.

        ``A`` evaluations at ``now`` follow a *static* per-``(i, j)``
        plan built once from the (immutable) partition, sharing
        critical-path prefixes: ``A_i^j(now) = I_old_j(A_i^hop(now))``
        where ``hop`` is the pair's last path step, so a deep hierarchy
        costs one ``I_old`` per pair per pass — with no per-pass path
        derivation or recursion.
        """
        now = self.clock.now
        tracker = self.tracker
        index = self.partition.index
        a_now: dict[tuple[SegmentId, SegmentId], Timestamp] = {}
        for i, j, hop in self._watermark_plan():
            base = now if hop == i else a_now[(i, hop)]
            a_now[(i, j)] = tracker.i_old(j, base)

        marks: dict[SegmentId, Timestamp] = {}
        for j in self.partition.segments:
            candidates = [tracker.i_old(j, now)]
            for i in self.partition.segments:
                if self.partition.is_higher(j, i):
                    candidates.append(a_now[(i, j)])
                    candidates.append(
                        tracker.a_func_from_below(i, j, now)
                    )
            marks[j] = min(candidates)
        for txn in self.active_transactions():
            if txn.class_id is not None:
                cache = self._a_wall_cache.setdefault(txn.txn_id, {})
                for j in self.partition.segments:
                    if self.partition.is_higher(j, txn.class_id):
                        wall = cache.get(j)
                        if wall is None:
                            wall = tracker.a_func(
                                txn.class_id, j, txn.initiation_ts
                            )
                            cache[j] = wall
                        marks[j] = min(marks[j], wall)
            elif txn.is_read_only:
                declared = self._ro_segments.get(txn.txn_id)
                pinned = self._ro_walls.get(txn.txn_id)
                if pinned is not None:
                    for j, wall in pinned.components.items():
                        marks[j] = min(marks[j], wall)
                elif declared is not None and (
                    self.partition.read_only_on_one_critical_path(declared)
                ):
                    cache = self._a_wall_cache.setdefault(txn.txn_id, {})
                    bottom = index.lowest_of(list(declared))
                    for j in declared:
                        wall = cache.get(j)
                        if wall is None:
                            wall = tracker.a_func_from_below(
                                bottom, j, txn.initiation_ts
                            )
                            cache[j] = wall
                        marks[j] = min(marks[j], wall)
                else:
                    # Protocol C transaction that has not pinned a wall
                    # yet: it will be handed wall_for(I(t)) — fixed
                    # already, since future walls have RT > I(t) — or
                    # fall back to the newest wall (clamped below).
                    candidate = self.walls.wall_for(txn.initiation_ts)
                    if candidate is not None:
                        for j, wall in candidate.components.items():
                            marks[j] = min(marks[j], wall)
        if self.walls.released:
            for j, wall in self.walls.released[-1].components.items():
                marks[j] = min(marks[j], wall)
        return marks

    def _watermark_plan(
        self,
    ) -> list[tuple[SegmentId, SegmentId, SegmentId]]:
        """Dependency-ordered ``(i, j, hop)`` triples for the ``A``-at-
        ``now`` sweep in :meth:`safe_watermarks`.

        ``hop`` is the last step of the critical path from ``i`` to
        ``j`` (``i`` itself for one-hop pairs); ordering by path length
        guarantees ``(i, hop)`` is evaluated before ``(i, j)``.  Built
        once — the partition never changes.
        """
        if self._wm_plan is None:
            index = self.partition.index
            entries: list[
                tuple[int, SegmentId, SegmentId, SegmentId]
            ] = []
            for j in self.partition.segments:
                for i in self.partition.segments:
                    if self.partition.is_higher(j, i):
                        path = index.critical_path(i, j)
                        assert path is not None  # is_higher guarded it
                        entries.append((len(path), i, j, path[-2]))
            entries.sort(key=lambda entry: entry[0])
            self._wm_plan = [(i, j, hop) for _, i, j, hop in entries]
        return self._wm_plan

    def collect_garbage(self) -> GCReport:
        """Prune versions below :meth:`safe_watermarks`.

        First tries to release a fresh time wall (the latest released
        wall clamps every watermark, so refreshing it is what lets the
        collector make progress on a long-quiet wall schedule), then
        retires dead walls so the watermarks consult live walls only.
        """
        started = time.perf_counter()
        try:
            self.walls.force_release()
        except ReproError:
            pass  # not settled right now; collect under the old clamp
        self._advance_frozen_marks()
        retired = self.retire_walls()
        collector = WatermarkGC(self.store, self.partition.segment_of)
        report = collector.collect(self.safe_watermarks())
        report.walls_retired = retired
        report.duration_s = time.perf_counter() - started
        if self._sink is not None:
            cache = self.store.snapshot_cache_report()
            self._sink.emit(
                GCPassEvent(
                    step=self.current_step,
                    ts=self.clock.now,
                    pruned_versions=report.pruned_versions,
                    walls_retired=retired,
                    duration_ms=round(report.duration_s * 1000.0, 3),
                    cache_hits=cache["hits"],
                    cache_misses=cache["misses"],
                    cache_cold=cache["cold"],
                    cache_entries=cache["entries"],
                )
            )
        return report
