"""Activity link functions — the analytical core of the paper (Sections 4.1, 5.1).

Per transaction class the library keeps an *activity log*: the interval
``[I(t), end(t))`` of every transaction ever run in the class (``end``
is the commit or abort time; the paper ignores aborts in these
definitions, but folding the abort time in is safe — an aborted
transaction leaves no versions, and all proofs only need "not active
implies finished", see DESIGN.md §7).  A transaction is **active at m**
iff ``I(t) < m`` and ``end(t) > m`` (strict, matching the paper).

On top of the logs live the paper's four time-mapping functions:

``I_old_T(m)``
    initiation time of the oldest transaction of class ``T`` active at
    ``m``; ``m`` itself if none (Section 4.1).

``C_late_T(m)``
    latest commit time among class-``T`` transactions active at ``m``;
    ``m`` if none; *not computable* while any such transaction is still
    running (Section 5.1).

``A_i^j(m)``
    the activity link function: compose ``I_old`` along the critical
    path from ``i`` up to ``j``, applying it at every class after ``i``.
    For ``CP = T_i -> T_k -> T_j``: ``A_i^j(m) = I_old_j(I_old_k(m))``.

``B_j^i(m)``
    the backward activity link function: compose ``C_late`` walking the
    critical path downwards, applying it at every class *left*, i.e.
    all classes except the final ``i``.  For the same path:
    ``B_j^i(m) = C_late_k(C_late_j(m))``.

``E_s^i(m)``
    the extended activity link function: walk the *undirected* critical
    path from ``s`` to ``i``; each up-hop (following a critical arc)
    applies ``I_old`` of the entered class, each down-hop (against a
    critical arc) applies ``C_late`` of the class being left.  On a
    purely ascending walk ``E`` coincides with ``A``; on a purely
    descending walk with ``B`` (this is how the paper's Lemma 2.1 proof
    decomposes it).

Properties 2.1 / 2.2 (``A_i^j(B_j^i(m)) >= m`` and
``A_i^j(B_j^i(m) - 1) < m`` with the integer clock) are verified by
property-based tests over random activity logs.

Implementation note: initiation timestamps are issued monotonically, so
each log is append-only in start order.  A max-segment-tree over the
``end`` values answers both "first active-at-m record" (``I_old``) and
"largest end among active-at-m records" (``C_late``) in O(log n).
"""

from __future__ import annotations

import bisect
import math
from typing import Optional

from repro.core.graph import Node, SemiTreeIndex
from repro.errors import NotComputableError, ReproError
from repro.txn.clock import Timestamp

#: Sentinel for "still running" ends inside the segment tree.
_OPEN = math.inf

#: A finite value larger than any real timestamp (timestamps are event
#: counts, far below this).  Used to probe for the _OPEN sentinel.
_FINITE_CEILING = 1e300


class _MaxSegmentTree:
    """Fixed-purpose max segment tree with amortised doubling.

    Supports: append a value, point-update, prefix maximum, and
    "first index < bound whose value exceeds a threshold".
    """

    def __init__(self) -> None:
        self._capacity = 1
        self._size = 0
        self._tree = [-_OPEN, -_OPEN]  # 1-based, length 2 * capacity

    def append(self, value: float) -> None:
        if self._size == self._capacity:
            self._grow()
        self._set(self._size, value)
        self._size += 1

    def update(self, index: int, value: float) -> None:
        if not 0 <= index < self._size:
            raise IndexError(index)
        self._set(index, value)

    def _grow(self) -> None:
        old_leaves = self._tree[self._capacity : self._capacity + self._size]
        self._capacity *= 2
        self._tree = [-_OPEN] * (2 * self._capacity)
        for i, value in enumerate(old_leaves):
            self._tree[self._capacity + i] = value
        for i in range(self._capacity - 1, 0, -1):
            self._tree[i] = max(self._tree[2 * i], self._tree[2 * i + 1])

    def _set(self, index: int, value: float) -> None:
        i = self._capacity + index
        self._tree[i] = value
        i //= 2
        while i:
            self._tree[i] = max(self._tree[2 * i], self._tree[2 * i + 1])
            i //= 2

    def prefix_max(self, bound: int) -> float:
        """Maximum of values at indices ``[0, bound)``."""
        if bound <= 0:
            return -_OPEN
        bound = min(bound, self._size)
        result = -_OPEN
        lo, hi = self._capacity, self._capacity + bound
        while lo < hi:
            if lo & 1:
                result = max(result, self._tree[lo])
                lo += 1
            if hi & 1:
                hi -= 1
                result = max(result, self._tree[hi])
            lo //= 2
            hi //= 2
        return result

    def first_above(self, bound: int, threshold: float) -> Optional[int]:
        """Smallest index in ``[0, bound)`` with value > ``threshold``.

        Iterative: decompose ``[0, bound)`` into its O(log n) canonical
        segment-tree nodes (left to right), find the first whose max
        exceeds the threshold, and descend into it — no per-level
        Python recursion on this hottest analytical path (every
        ``i_old``/``oldest_open`` call lands here).
        """
        bound = min(bound, self._size)
        if bound <= 0:
            return None
        tree = self._tree
        # Canonical cover of [0, bound): nodes collected from the lo
        # side are in left-to-right order, from the hi side right-to-left.
        left_nodes: list[int] = []
        right_nodes: list[int] = []
        lo, hi = self._capacity, self._capacity + bound
        while lo < hi:
            if lo & 1:
                left_nodes.append(lo)
                lo += 1
            if hi & 1:
                hi -= 1
                right_nodes.append(hi)
            lo //= 2
            hi //= 2
        for node in left_nodes + right_nodes[::-1]:
            if tree[node] > threshold:
                while node < self._capacity:  # descend to the leaf
                    node *= 2
                    if tree[node] <= threshold:
                        node += 1
                return node - self._capacity
        return None

    def __len__(self) -> int:
        return self._size


class ClassActivityLog:
    """Activity intervals of one transaction class."""

    def __init__(self, class_id: Node) -> None:
        self.class_id = class_id
        self._starts: list[Timestamp] = []
        self._txn_ids: list[int] = []
        self._ends = _MaxSegmentTree()
        #: Plain mirror of the end values (None = still running); used
        #: for log merging during dynamic restructuring and for tests.
        self._end_values: list[Optional[Timestamp]] = []
        self._index_of: dict[int, int] = {}
        #: Count of intervals closed so far.  Queries at a fixed bound
        #: ``m <= now`` can only change when an interval *closes*:
        #: initiations are monotone, so a later begin never enters the
        #: ``start < m`` prefix, and an end above ``m`` keeps its
        #: transaction active-at-``m`` forever.  The time-wall manager
        #: uses this to skip doomed release retries (see
        #: :class:`~repro.core.timewall.TimeWallManager`).
        self.closures = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_begin(self, txn_id: int, start: Timestamp) -> None:
        if self._starts and start <= self._starts[-1]:
            raise ReproError(
                f"class {self.class_id!r}: initiation times must be "
                f"strictly increasing ({start} after {self._starts[-1]})"
            )
        if txn_id in self._index_of:
            raise ReproError(
                f"class {self.class_id!r}: txn {txn_id} already began"
            )
        self._index_of[txn_id] = len(self._starts)
        self._starts.append(start)
        self._txn_ids.append(txn_id)
        self._ends.append(_OPEN)
        self._end_values.append(None)

    def record_end(self, txn_id: int, end: Timestamp) -> None:
        index = self._index_of.get(txn_id)
        if index is None:
            raise ReproError(
                f"class {self.class_id!r}: txn {txn_id} never began"
            )
        if end <= self._starts[index]:
            raise ReproError(
                f"class {self.class_id!r}: txn {txn_id} end {end} <= "
                f"start {self._starts[index]}"
            )
        self._ends.update(index, float(end))
        self._end_values[index] = end
        self.closures += 1

    def records(self) -> list[tuple[int, Timestamp, Optional[Timestamp]]]:
        """All ``(txn_id, start, end)`` records, in start order."""
        return list(zip(self._txn_ids, self._starts, self._end_values))

    # ------------------------------------------------------------------
    # The paper's per-class functions
    # ------------------------------------------------------------------
    def i_old(self, m: Timestamp) -> Timestamp:
        """``I_old(m)``: initiation of the oldest transaction active at m."""
        prefix = bisect.bisect_left(self._starts, m)
        index = self._ends.first_above(prefix, float(m))
        if index is None:
            return m
        return self._starts[index]

    def c_late(self, m: Timestamp) -> Timestamp:
        """``C_late(m)``: latest commit among transactions active at m.

        Raises :class:`NotComputableError` while any transaction
        initiated before ``m`` is still running (paper Section 5.1).
        """
        prefix = bisect.bisect_left(self._starts, m)
        top = self._ends.prefix_max(prefix)
        if top == _OPEN:
            raise NotComputableError(
                f"class {self.class_id!r}: C_late({m}) not computable, a "
                f"transaction initiated before {m} is still active",
                class_id=self.class_id,
            )
        if top <= m:
            return m
        return int(top)

    def c_late_computable(self, m: Timestamp) -> bool:
        prefix = bisect.bisect_left(self._starts, m)
        return self._ends.prefix_max(prefix) != _OPEN

    def oldest_open(
        self, bound: Optional[Timestamp] = None
    ) -> Optional[tuple[int, Timestamp]]:
        """``(txn_id, start)`` of the oldest still-running transaction.

        With ``bound``, only transactions initiated strictly before it
        are considered — exactly the ones that make ``C_late(bound)``
        uncomputable, so a delayed time-wall release can name its
        culprit.
        """
        if bound is None:
            prefix = len(self._starts)
        else:
            prefix = bisect.bisect_left(self._starts, bound)
        index = self._ends.first_above(prefix, _FINITE_CEILING)
        if index is None:
            return None
        return self._txn_ids[index], self._starts[index]

    def oldest_active_start(self) -> Optional[Timestamp]:
        """Initiation of the oldest currently-running transaction."""
        # Only still-open intervals carry the infinite sentinel, so any
        # finite threshold above every real timestamp matches exactly them.
        index = self._ends.first_above(len(self._starts), _FINITE_CEILING)
        if index is None:
            return None
        return self._starts[index]

    def settled_through(self, m: Timestamp) -> bool:
        """Have all transactions with ``I(t) < m`` finished?

        This is the wall *settlement* condition the time-wall manager
        enforces so Protocol C readers never encounter an uncommitted
        version below the wall (DESIGN.md §7 clarification).
        """
        return self.c_late_computable(m)

    def __len__(self) -> int:
        return len(self._starts)


class ActivityTracker:
    """Activity logs for every class plus the composed link functions.

    Parameters
    ----------
    index:
        The :class:`SemiTreeIndex` of the transaction hierarchy graph;
        critical paths and UCPs come from here.
    """

    def __init__(self, index: SemiTreeIndex) -> None:
        self.index = index
        self.logs: dict[Node, ClassActivityLog] = {
            node: ClassActivityLog(node) for node in index.graph.nodes
        }
        #: Compiled hop plans, keyed by the (from, to) class pair: a
        #: tuple of bound per-class ``i_old``/``c_late`` methods, so the
        #: composed functions never re-walk the path or re-query arc
        #: directions per evaluation.  The log set and the semi-tree are
        #: fixed for this tracker's lifetime (dynamic restructuring
        #: builds a fresh tracker), so the plans never go stale.
        self._a_plans: dict[tuple[Node, Node], tuple] = {}
        self._b_plans: dict[tuple[Node, Node], tuple] = {}
        self._e_plans: dict[tuple[Node, Node], tuple] = {}

    # ------------------------------------------------------------------
    # Recording hooks (called by the HDD scheduler)
    # ------------------------------------------------------------------
    def record_begin(self, class_id: Node, txn_id: int, start: Timestamp) -> None:
        self.logs[class_id].record_begin(txn_id, start)

    def record_end(self, class_id: Node, txn_id: int, end: Timestamp) -> None:
        self.logs[class_id].record_end(txn_id, end)

    # ------------------------------------------------------------------
    # Per-class functions
    # ------------------------------------------------------------------
    def i_old(self, class_id: Node, m: Timestamp) -> Timestamp:
        return self.logs[class_id].i_old(m)

    def c_late(self, class_id: Node, m: Timestamp) -> Timestamp:
        return self.logs[class_id].c_late(m)

    # ------------------------------------------------------------------
    # Composed functions
    # ------------------------------------------------------------------
    def a_func(self, i: Node, j: Node, m: Timestamp) -> Timestamp:
        """``A_i^j(m)`` along the critical path from ``i`` to ``j``.

        ``A_i^i(m) = m`` by convention (the identity hop); raises
        :class:`ReproError` when no critical path exists.
        """
        plan = self._a_plans.get((i, j))
        if plan is None:
            path = self.index.critical_path(i, j)
            if path is None:
                raise ReproError(
                    f"A_{i}^{j}: no critical path from {i!r} to {j!r}"
                )
            plan = tuple(self.logs[cls].i_old for cls in path[1:])
            self._a_plans[(i, j)] = plan
        value = m
        for hop in plan:
            value = hop(value)
        return value

    def a_func_from_below(self, bottom: Node, j: Node, m: Timestamp) -> Timestamp:
        """``A`` evaluated from a fictitious class hanging below ``bottom``.

        Section 5.0: a read-only transaction whose read segments lie on
        one critical path behaves like an update transaction in a class
        immediately below the lowest class of that path.  The fictitious
        arc ``T_fict -> T_bottom`` prepends one ``I_old`` hop at
        ``bottom`` itself.
        """
        value = self.i_old(bottom, m)
        if j == bottom:
            return value
        return self.a_func(bottom, j, value)

    def b_func(self, j: Node, i: Node, m: Timestamp) -> Timestamp:
        """``B_j^i(m)``: compose ``C_late`` walking down from ``j`` to ``i``.

        Applies ``C_late`` at every class on the path except the final
        ``i`` (see module docstring for the derivation).  Raises
        :class:`NotComputableError` if any hop is not yet computable.
        """
        plan = self._b_plans.get((j, i))
        if plan is None:
            path = self.index.critical_path(i, j)
            if path is None:
                raise ReproError(
                    f"B_{j}^{i}: no critical path from {i!r} to {j!r}"
                )
            # j first, i excluded.
            plan = tuple(self.logs[cls].c_late for cls in reversed(path[1:]))
            self._b_plans[(j, i)] = plan
        value = m
        for hop in plan:
            value = hop(value)
        return value

    def e_func(self, s: Node, i: Node, m: Timestamp) -> Timestamp:
        """``E_s^i(m)`` along the undirected critical path from ``s`` to ``i``.

        Up-hops apply ``I_old`` of the entered class; down-hops apply
        ``C_late`` of the class being left.  ``E_s^s(m) = m``.
        """
        plan = self._e_plans.get((s, i))
        if plan is None:
            walk = self.index.undirected_critical_path(s, i)
            if walk is None:
                raise ReproError(
                    f"E_{s}^{i}: classes {s!r} and {i!r} are not connected"
                )
            hops = []
            for here, there in zip(walk, walk[1:]):
                if self.index.reduction.has_arc(here, there):
                    hops.append(self.logs[there].i_old)
                elif self.index.reduction.has_arc(there, here):
                    hops.append(self.logs[here].c_late)
                else:  # pragma: no cover - UCP guarantees one of the two
                    raise ReproError(
                        f"no critical arc between {here!r}, {there!r}"
                    )
            plan = tuple(hops)
            self._e_plans[(s, i)] = plan
        value = m
        for hop in plan:
            value = hop(value)
        return value

    def try_e_func(self, s: Node, i: Node, m: Timestamp) -> Optional[Timestamp]:
        """``E_s^i(m)``, or ``None`` while not computable."""
        try:
            return self.e_func(s, i, m)
        except NotComputableError:
            return None
