"""The paper's contribution: hierarchical database decomposition."""

from repro.core.activity import ActivityTracker, ClassActivityLog
from repro.core.analysis import (
    DerivedPartition,
    GranuleProfile,
    coarsen_to_tst,
    derive_partition,
)
from repro.core.trace import (
    TraceProfile,
    collect_trace_profiles,
    derive_partition_from_trace,
)
from repro.core.restructure import (
    RestructurePlan,
    RestructuringHDDScheduler,
    plan_restructure,
    restructured_partition,
)
from repro.core.graph import (
    Digraph,
    SemiTreeIndex,
    is_semi_tree,
    is_transitive_semi_tree,
)
from repro.core.partition import (
    HierarchicalPartition,
    PartitionSummary,
    TransactionProfile,
    build_dhg,
)
from repro.core.relation import audit_psr, topologically_follows
from repro.core.scheduler import HDDScheduler
from repro.core.timewall import TimeWall, TimeWallManager

__all__ = [
    "TraceProfile",
    "collect_trace_profiles",
    "derive_partition_from_trace",
    "GranuleProfile",
    "DerivedPartition",
    "derive_partition",
    "coarsen_to_tst",
    "RestructurePlan",
    "RestructuringHDDScheduler",
    "plan_restructure",
    "restructured_partition",
    "Digraph",
    "SemiTreeIndex",
    "is_semi_tree",
    "is_transitive_semi_tree",
    "TransactionProfile",
    "HierarchicalPartition",
    "PartitionSummary",
    "build_dhg",
    "ActivityTracker",
    "ClassActivityLog",
    "topologically_follows",
    "audit_psr",
    "TimeWall",
    "TimeWallManager",
    "HDDScheduler",
]
