"""Dynamic restructuring of a database decomposition (paper Section 7.1.1).

An *ad-hoc* transaction may demand an access pattern the current
partition forbids — writing several segments, or reading a segment that
is not higher than its root.  The paper's future-work answer is to
restructure the partition on line.  This module implements that scheme
in two parts:

* :func:`plan_restructure` computes the minimal-by-greed merge of
  segments that legalises a requested ``(writes, reads)`` pattern: all
  written segments collapse into one, then read segments that are still
  not higher than the merged root are folded in, then the §7.2.1
  coarsening repairs any remaining semi-tree damage.  The plan reports
  exactly which segments merge, so the operator can see the concurrency
  cost before applying it.

* :meth:`RestructuringHDDScheduler.restructure` applies a plan to a
  *live* scheduler.  The activity logs of merged classes are merged
  (interleaving their records by initiation time — the global clock
  makes that order strict) and in-flight transactions keep running:
  transactions of merged classes simply find themselves in the merged
  class, which only ever *widens* what they may access.  No global
  quiescence is needed; the paper's goal.  The one subtlety is wall
  monotonicity: merged activity logs make ``I_old`` *smaller or equal*
  (more transactions qualify as active), so walls computed after the
  merge are conservative with respect to walls cached before it —
  Protocol A reads stay safe.  Released time walls are discarded; the
  manager re-releases against the new hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.activity import ActivityTracker
from repro.core.analysis import _UnionFind, coarsen_to_tst
from repro.core.graph import Digraph
from repro.core.partition import HierarchicalPartition, TransactionProfile
from repro.core.scheduler import HDDScheduler
from repro.core.timewall import TimeWallManager
from repro.errors import PartitionError, ProtocolViolation
from repro.txn.transaction import SegmentId


@dataclass(frozen=True)
class RestructurePlan:
    """A computed segment merge.

    ``merged_into`` maps every old segment to its new segment id (the
    lexicographically first member of its merge group, so unmerged
    segments keep their names).  ``new_root`` is the segment an ad-hoc
    profile with the requested pattern would write.
    """

    merged_into: dict[SegmentId, SegmentId]
    new_root: SegmentId
    reads: frozenset[SegmentId]

    @property
    def merge_groups(self) -> dict[SegmentId, list[SegmentId]]:
        groups: dict[SegmentId, list[SegmentId]] = {}
        for old, new in sorted(self.merged_into.items()):
            groups.setdefault(new, []).append(old)
        return {k: v for k, v in groups.items() if len(v) > 1}

    @property
    def is_noop(self) -> bool:
        return all(old == new for old, new in self.merged_into.items())


def plan_restructure(
    partition: HierarchicalPartition,
    writes: Iterable[SegmentId],
    reads: Iterable[SegmentId] = (),
) -> RestructurePlan:
    """Plan the merges that make ``(writes, reads)`` a legal profile."""
    write_set = set(writes)
    read_set = set(reads)
    if not write_set:
        raise PartitionError("an ad-hoc update pattern must write somewhere")
    unknown = (write_set | read_set) - set(partition.segments)
    if unknown:
        raise PartitionError(f"unknown segments: {sorted(unknown)}")

    uf = _UnionFind()
    for segment in partition.segments:
        uf.add(segment)
    ordered_writes = sorted(write_set)
    for segment in ordered_writes[1:]:
        uf.union(ordered_writes[0], segment)

    def quotient_with_adhoc() -> Digraph:
        """Current merge quotient plus the ad-hoc profile's arcs."""
        leader = {s: uf.find(s) for s in partition.segments}
        merged = Digraph(nodes=set(leader.values()))
        for u, v in partition.dhg.arcs:
            if leader[u] != leader[v]:
                merged.add_arc(leader[u], leader[v])
        root = leader[ordered_writes[0]]
        for segment in read_set:
            if leader[segment] != root:
                merged.add_arc(root, leader[segment])
        return merged

    # Fold in whatever the §7.2.1 coarsening still needs to merge.
    while True:
        graph = quotient_with_adhoc()
        further = coarsen_to_tst(graph)
        if all(further[node] == node for node in graph.nodes):
            break
        for node, leader in further.items():
            uf.union(node, leader)

    # Canonical names: smallest member of each group.
    groups: dict[SegmentId, list[SegmentId]] = {}
    for segment in partition.segments:
        groups.setdefault(uf.find(segment), []).append(segment)
    canonical = {
        leader: min(members) for leader, members in groups.items()
    }
    merged_into = {
        segment: canonical[uf.find(segment)]
        for segment in partition.segments
    }
    return RestructurePlan(
        merged_into=merged_into,
        new_root=merged_into[ordered_writes[0]],
        reads=frozenset(merged_into[s] for s in read_set),
    )


def restructured_partition(
    partition: HierarchicalPartition,
    plan: RestructurePlan,
    adhoc_profile: Optional[str] = None,
) -> HierarchicalPartition:
    """Build the post-merge partition (optionally adding the ad-hoc profile).

    Granules keep their original ``"<old segment>:<name>"`` ids via an
    explicit alias map from old segment prefixes, so no data moves.
    """
    new_segments = sorted(set(plan.merged_into.values()))
    profiles = []
    for profile in partition.profiles.values():
        writes = {plan.merged_into[s] for s in profile.writes}
        reads = {plan.merged_into[s] for s in profile.reads}
        if profile.is_read_only:
            profiles.append(TransactionProfile.read_only(profile.name, reads))
        else:
            profiles.append(
                TransactionProfile.update(profile.name, writes, reads)
            )
    if adhoc_profile is not None:
        profiles.append(
            TransactionProfile.update(
                adhoc_profile, writes={plan.new_root}, reads=plan.reads
            )
        )
    merged = _SegmentAliasingPartition(
        segments=new_segments,
        profiles=profiles,
        alias=dict(plan.merged_into),
    )
    return merged


class _SegmentAliasingPartition(HierarchicalPartition):
    """A partition whose granule ids may carry pre-merge segment prefixes."""

    def __init__(self, segments, profiles, alias: dict[SegmentId, SegmentId]):
        super().__init__(segments, profiles)
        self._alias = alias

    def segment_of(self, granule):
        prefix, separator, _ = granule.partition(":")
        if separator and prefix in self._alias:
            return self._alias[prefix]
        return super().segment_of(granule)

    def granule(self, segment, name):
        # New granules are created under the *current* segment names.
        if segment in self._alias and self._alias[segment] != segment:
            segment = self._alias[segment]
        return super().granule(segment, name)


def merge_activity_logs(
    tracker: ActivityTracker,
    plan: RestructurePlan,
    new_tracker: ActivityTracker,
) -> None:
    """Replay old per-class activity records into the merged classes.

    Records of classes merging into one are interleaved by initiation
    time; the global clock makes initiation times unique, so the merged
    sequence is strictly increasing as :class:`ClassActivityLog`
    requires.
    """
    buckets: dict[SegmentId, list[tuple[int, int, Optional[int]]]] = {}
    for old_class, log in tracker.logs.items():
        target = plan.merged_into[old_class]
        buckets.setdefault(target, []).extend(log.records())
    for target, records in buckets.items():
        records.sort(key=lambda record: record[1])
        merged_log = new_tracker.logs[target]
        for txn_id, start, end in records:
            merged_log.record_begin(txn_id, start)
            if end is not None:
                merged_log.record_end(txn_id, end)


class RestructuringHDDScheduler(HDDScheduler):
    """An HDD scheduler that accepts ad-hoc patterns by restructuring.

    :meth:`run_adhoc_profile` plans the merge for a requested pattern,
    applies it on line, registers the ad-hoc profile and returns it;
    the caller then runs ordinary transactions under that profile.
    """

    name = "hdd-dynamic"

    #: Clock time of the last applied restructure (0 = never); PSR
    #: audits should pass this as their ``since`` bound.
    restructured_at: int = 0

    def restructure(
        self, plan: RestructurePlan, adhoc_profile: Optional[str] = None
    ) -> None:
        """Apply ``plan`` without quiescing the database.

        In-flight transactions keep their class ids, which are remapped
        through the plan; their Protocol A wall caches are dropped so
        subsequent reads use walls from the merged (conservative) logs.
        """
        if plan.is_noop and adhoc_profile is None:
            return
        new_partition = restructured_partition(
            self.partition, plan, adhoc_profile
        )
        new_tracker = ActivityTracker(new_partition.index)
        merge_activity_logs(self.tracker, plan, new_tracker)
        self.partition = new_partition
        self.tracker = new_tracker
        self.walls = TimeWallManager(
            new_tracker, self.clock, interval=self.walls.interval
        )
        self.walls.set_sink(self._sink, step_source=self)
        # Drop Protocol A wall caches: walls recomputed from the merged
        # (more populous) logs are <= the cached ones, i.e. conservative
        # and still PSR-safe.  Pinned Protocol C walls are KEPT — an old
        # wall remains a consistent cut (post-restructure transactions
        # initiate above every old component), and switching a reader's
        # wall mid-transaction would break its snapshot.
        self._a_wall_cache.clear()
        for txn in self.active_transactions():
            if txn.class_id is not None:
                txn.class_id = plan.merged_into[txn.class_id]
        self.restructured_at = self.clock.now
        self.poll_walls()

    def run_adhoc_profile(
        self,
        name: str,
        writes: Iterable[SegmentId],
        reads: Iterable[SegmentId] = (),
    ) -> str:
        """Legalise and register an ad-hoc update profile; returns its name."""
        if name in self.partition.profiles:
            raise ProtocolViolation(f"profile {name!r} already exists")
        plan = plan_restructure(self.partition, writes, reads)
        self.restructure(plan, adhoc_profile=name)
        return name
