"""Declarative, parallel, cached parameter sweeps (``repro sweep``)."""

from repro.sweep.runner import (
    SweepOutcome,
    SweepRunner,
    execute_config,
    parallel_map_iter,
    run_sweep,
)
from repro.sweep.spec import (
    SCHEDULER_FACTORIES,
    SWEEP_CACHE_VERSION,
    RunConfig,
    SweepSpec,
    build_simulator,
    build_workload,
    config_hash,
    effective_seed,
)

__all__ = [
    "RunConfig",
    "SweepSpec",
    "SweepOutcome",
    "SweepRunner",
    "SCHEDULER_FACTORIES",
    "SWEEP_CACHE_VERSION",
    "build_simulator",
    "build_workload",
    "config_hash",
    "effective_seed",
    "execute_config",
    "parallel_map_iter",
    "run_sweep",
]
