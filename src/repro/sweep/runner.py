"""Parallel sweep execution with an on-disk result cache.

``ProcessPoolExecutor`` fans the expanded configs out across cores (the
GIL makes threads useless for this CPU-bound work); each worker rebuilds
its simulator from the pure-data :class:`~repro.sweep.spec.RunConfig`
and returns one JSON-safe result row.  Three properties hold by
construction:

* **Determinism** — a row depends only on its config (the simulator
  seed is derived from the config hash), and rows are merged in spec
  expansion order, so the merged document is byte-identical for any
  worker count, including ``workers=1``.
* **Incrementality** — rows are cached on disk under their config hash;
  re-running a sweep executes only the configs whose hash is new.
  Bump :data:`~repro.sweep.spec.SWEEP_CACHE_VERSION` when engine
  behaviour changes.
* **Timing honesty** — wall-clock numbers never enter the merged
  document (they would break byte-identity); they live on the returned
  :class:`SweepOutcome` instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional

from repro.sweep.spec import (
    RunConfig,
    SweepSpec,
    build_simulator,
    config_hash,
    effective_seed,
)


def usable_cpus() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def parallel_map_iter(fn, items, workers: int):
    """Order-preserving parallel map, inline when ``workers == 1``.

    The shared execution primitive of the sweep runner and the explore
    campaign: ``workers == 1`` runs in-process (no pool, no pickling —
    the determinism reference), anything larger streams through
    ``ProcessPoolExecutor.map``, which preserves submission order, so
    consumers merge results identically for every worker count.  ``fn``
    and every item must be picklable when ``workers > 1``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    items = list(items)
    if not items:
        return
    if workers == 1:
        for item in items:
            yield fn(item)
        return
    with ProcessPoolExecutor(max_workers=workers) as pool:
        yield from pool.map(fn, items)


def execute_config(config_dict: Mapping[str, object]) -> dict[str, object]:
    """Run one config to completion; the process-pool work unit.

    Takes and returns plain dicts so the pool never pickles live
    scheduler state.  The row carries the config, its hash, the derived
    simulator seed, the metric summary, and a digest of the recorded
    schedule (so byte-identity checks cover the committed schedule, not
    just the headline metrics).
    """
    config = RunConfig.from_dict(config_dict)
    digest = config_hash(config)
    simulator = build_simulator(config)
    try:
        result = simulator.run()
        schedule_digest = hashlib.sha256(
            "\n".join(
                str(step) for step in simulator.scheduler.schedule
            ).encode()
        ).hexdigest()
    finally:
        # The proc-transport runtime owns worker children; reap them
        # before the pool recycles this process (sim schedulers have no
        # close and skip this).
        close = getattr(simulator.scheduler, "close", None)
        if close is not None:
            close()
    return {
        "hash": digest,
        "config": config.to_dict(),
        "seed_effective": effective_seed(digest),
        "metrics": result.summary(),
        "schedule_digest": schedule_digest,
    }


@dataclass
class SweepOutcome:
    """What one sweep run produced (plus how it ran)."""

    spec: SweepSpec
    rows: list[dict[str, object]]
    executed: int
    cache_hits: int
    workers: int
    wall_s: float
    #: Usable cores when the sweep ran — wall-clock comparisons are
    #: meaningless without it (4 workers on 1 core measure pool
    #: overhead, not parallelism).
    cpu_count: int = 0

    def parallelism_note(self) -> str:
        """Human-readable label of the execution regime.

        Attach this wherever ``wall_s`` or a speedup derived from it is
        reported, so a sub-1.0 "speedup" measured on a starved box is
        read as the oversubscription artifact it is, not a regression.
        """
        if self.workers <= 1:
            return f"serial on {self.cpu_count} core(s)"
        if self.cpu_count >= self.workers:
            return f"{self.workers} workers on {self.cpu_count} cores"
        return (
            f"{self.workers} workers oversubscribed on "
            f"{self.cpu_count} core(s): the pool only adds overhead, "
            "wall-clock speedup is not meaningful"
        )

    def merged(self) -> dict[str, object]:
        """The deterministic merged document (no timing, no run info)."""
        return {"spec": self.spec.to_dict(), "results": self.rows}

    def merged_json(self) -> str:
        """Canonical JSON — byte-identical across worker counts."""
        return json.dumps(self.merged(), sort_keys=True, indent=2) + "\n"

    def table_rows(self) -> list[dict[str, object]]:
        """Flat rows for ``format_table``: varied config axes + metrics."""
        varied = _varied_fields(self.rows)
        flat = []
        for row in self.rows:
            config = dict(row["config"])
            workload = dict(config.pop("workload", {}))
            cell: dict[str, object] = {"scheduler": config["scheduler"]}
            for name in varied:
                if name in config:
                    cell[name] = config[name]
                elif name in workload:
                    cell[name] = workload[name]
            metrics = dict(row["metrics"])
            metrics.pop("scheduler", None)
            cell.update(metrics)
            flat.append(cell)
        return flat


def _varied_fields(rows: list[dict[str, object]]) -> list[str]:
    """Config/workload keys that take more than one value across rows."""
    seen: dict[str, set] = {}
    order: list[str] = []
    for row in rows:
        config = dict(row["config"])
        workload = dict(config.pop("workload", {}))
        for source in (config, workload):
            for key, value in source.items():
                if key == "scheduler":
                    continue
                if key not in seen:
                    seen[key] = set()
                    order.append(key)
                seen[key].add(repr(value))
    return [key for key in order if len(seen[key]) > 1]


class SweepRunner:
    """Expand a spec, execute what the cache lacks, merge in order.

    Parameters
    ----------
    workers:
        Process count; ``1`` (default) executes inline in this process
        — no pool, no pickling — which is also the reference the
        determinism tests compare parallel runs against.
    cache_dir:
        Directory for per-config result rows (``<hash>.json``).
        ``None`` disables caching.
    """

    def __init__(
        self, workers: int = 1, cache_dir: Optional[str | Path] = None
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    def run(self, spec: SweepSpec) -> SweepOutcome:
        started = time.perf_counter()
        configs = spec.expand()
        hashes = [config_hash(config) for config in configs]
        rows: dict[str, dict] = {}
        pending: list[tuple[str, RunConfig]] = []
        seen: set[str] = set()
        for digest, config in zip(hashes, configs):
            if digest in seen:  # identical cell listed twice
                continue
            seen.add(digest)
            cached = self._cache_read(digest)
            if cached is not None:
                rows[digest] = cached
            else:
                pending.append((digest, config))
        cache_hits = len(rows)
        for digest, row in self._execute(pending):
            self._cache_write(digest, row)
            rows[digest] = row
        return SweepOutcome(
            spec=spec,
            rows=[rows[digest] for digest in hashes],
            executed=len(pending),
            cache_hits=cache_hits,
            workers=self.workers,
            wall_s=time.perf_counter() - started,
            cpu_count=usable_cpus(),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, pending):
        if not pending:
            return
        dicts = [config.to_dict() for _, config in pending]
        for (digest, _), row in zip(
            pending, parallel_map_iter(execute_config, dicts, self.workers)
        ):
            yield digest, row

    # ------------------------------------------------------------------
    # On-disk cache
    # ------------------------------------------------------------------
    def _cache_read(self, digest: str) -> Optional[dict]:
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{digest}.json"
        try:
            with open(path) as stream:
                return json.load(stream)
        except (OSError, json.JSONDecodeError):
            return None

    def _cache_write(self, digest: str, row: dict) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / f"{digest}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(row, sort_keys=True, indent=2) + "\n")
        tmp.replace(path)


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache_dir: Optional[str | Path] = None,
) -> SweepOutcome:
    """Convenience wrapper: ``SweepRunner(workers, cache_dir).run(spec)``."""
    return SweepRunner(workers=workers, cache_dir=cache_dir).run(spec)
