"""Declarative parameter sweeps: spec -> self-contained run configs.

The paper's efficacy story (Section 7, Figures 9-10) is told through
scheduler x workload x multiprogramming x seed grids.  A
:class:`SweepSpec` declares such a grid once; :meth:`SweepSpec.expand`
turns it into a flat list of :class:`RunConfig`\\ s, each of which is
pure data — JSON-serialisable, picklable, and sufficient on its own to
rebuild the partition, workload, scheduler and simulator in any worker
process.

Determinism is anchored in :func:`config_hash`: the SHA-256 of a
config's canonical JSON form (plus a cache-format version salt).  The
hash keys the on-disk result cache, and :func:`effective_seed` derives
the simulator seed from it, so a config's result depends on nothing but
the config itself — not on worker count, completion order, or position
in the grid.  Re-running a sweep with one cell changed re-executes only
that cell.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Mapping, Optional, Sequence

from repro.baselines import (
    MultiversionTimestampOrdering,
    MultiversionTwoPhaseLocking,
    ReedMultiversionTimestampOrdering,
    SDD1Pipelining,
    TimestampOrdering,
    TwoPhaseLocking,
)
from repro.core.scheduler import HDDScheduler
from repro.errors import ConfigError
from repro.sim.claims import build_claims_partition, build_claims_workload
from repro.sim.engine import Simulator
from repro.sim.hierarchies import (
    build_hierarchy_workload,
    chain_partition,
    star_partition,
    tree_partition,
)
from repro.sim.inventory import (
    build_inventory_partition,
    build_inventory_workload,
)
from repro.sim.workload import Workload

#: Bump to invalidate every on-disk sweep cache entry (the hash is the
#: cache key, and results depend on engine behaviour, not just config).
SWEEP_CACHE_VERSION = 1


#: The canonical scheduler registry (the CLI shares it).
SCHEDULER_FACTORIES: dict[str, Callable] = {
    "hdd": lambda p: HDDScheduler(p),
    "hdd-to": lambda p: HDDScheduler(p, protocol_b="to"),
    "hdd-reed": lambda p: HDDScheduler(p, protocol_b="mvto-reed"),
    "2pl": lambda p: TwoPhaseLocking(),
    "to": lambda p: TimestampOrdering(),
    "mvto": lambda p: MultiversionTimestampOrdering(),
    "mvto-reed": lambda p: ReedMultiversionTimestampOrdering(),
    "mv2pl": lambda p: MultiversionTwoPhaseLocking(),
    "sdd1": lambda p: SDD1Pipelining(p),
}


def _make_scheduler(name: str, partition):
    if name not in SCHEDULER_FACTORIES:
        raise ConfigError(f"unknown scheduler {name!r}")
    return SCHEDULER_FACTORIES[name](partition)


@dataclass(frozen=True)
class RunConfig:
    """One fully specified simulation run (pure data).

    ``workload`` holds the schema name plus its builder parameters,
    e.g. ``{"schema": "inventory", "read_only_share": 0.5}`` or
    ``{"schema": "chain", "depth": 4, "granules_per_segment": 8}``.
    """

    scheduler: str
    seed: int = 0
    clients: int = 8
    target_commits: Optional[int] = None
    max_steps: int = 50_000
    think_time: int = 0
    restart_backoff: int = 3
    gc_interval: Optional[int] = None
    arrival_rate: Optional[float] = None
    audit: bool = False
    workload: Mapping[str, object] = field(
        default_factory=lambda: {"schema": "inventory"}
    )
    #: Distributed-runtime parameters (``latency``, ``jitter``,
    #: ``drop_rate``, ``spike_rate``, ``spike_ticks``, ``net_seed``,
    #: ``wall_interval``, ``heartbeat``, ``batch_gossip``) or ``None``
    #: for the monolithic scheduler.  ``None`` is omitted from
    #: :meth:`to_dict` so every pre-existing config hash (and its
    #: cached result) is unchanged.
    dist: Optional[Mapping[str, object]] = None

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "scheduler": self.scheduler,
            "seed": self.seed,
            "clients": self.clients,
            "target_commits": self.target_commits,
            "max_steps": self.max_steps,
            "think_time": self.think_time,
            "restart_backoff": self.restart_backoff,
            "gc_interval": self.gc_interval,
            "arrival_rate": self.arrival_rate,
            "audit": self.audit,
            "workload": dict(self.workload),
        }
        if self.dist is not None:
            data["dist"] = dict(self.dist)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunConfig":
        merged = {**data, "workload": dict(data["workload"])}
        if merged.get("dist") is not None:
            merged["dist"] = dict(merged["dist"])
        return cls(**merged)


def config_hash(config: RunConfig) -> str:
    """Stable SHA-256 over the config's canonical JSON form."""
    canonical = json.dumps(
        {"cache_version": SWEEP_CACHE_VERSION, **config.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def effective_seed(digest: str) -> int:
    """The simulator seed for a config, derived from its hash.

    Tying the seed to the config (rather than to grid position or
    submission order) is what makes sweep results byte-identical
    regardless of worker count or completion order.
    """
    return int(digest[:16], 16)


def build_workload(params: Mapping[str, object]) -> Workload:
    """Build the (partitioned) workload a config names.

    Schemas: ``inventory`` and ``claims`` (the paper's two case
    studies), plus the synthetic hierarchies ``chain`` (``depth``),
    ``star`` (``leaves``) and ``tree`` (``depth``, ``branching``).
    Remaining keys pass through to the workload builder
    (``read_only_share``, ``skew``, ``granules_per_segment``, ...).
    """
    params = dict(params)
    schema = params.pop("schema", "inventory")
    if schema == "inventory":
        return build_inventory_workload(build_inventory_partition(), **params)
    if schema == "claims":
        return build_claims_workload(build_claims_partition(), **params)
    if schema == "chain":
        partition = chain_partition(int(params.pop("depth", 3)))
    elif schema == "star":
        partition = star_partition(int(params.pop("leaves", 2)))
    elif schema == "tree":
        partition = tree_partition(
            int(params.pop("depth", 3)), int(params.pop("branching", 2))
        )
    else:
        raise ConfigError(f"unknown workload schema {schema!r}")
    return build_hierarchy_workload(partition, **params)


def _make_dist_runtime(config: RunConfig, partition):
    """A :class:`~repro.dist.runtime.DistributedRuntime` for a config
    carrying a ``dist`` block (imported lazily: most sweeps never pay
    for the distributed stack)."""
    from repro.dist import DistributedRuntime, FaultPlan

    if config.scheduler not in DIST_SCHEDULERS:
        raise ConfigError(
            f"scheduler {config.scheduler!r} has no distributed runtime; "
            f"choose from {sorted(DIST_SCHEDULERS)}"
        )
    if config.gc_interval is not None:
        raise ConfigError(
            "gc_interval is not supported by the distributed runtime "
            "(it never retires walls or prunes versions)"
        )
    params = dict(config.dist or {})
    net_seed = int(params.pop("net_seed", 0))
    wall_interval = int(params.pop("wall_interval", 25))
    heartbeat = int(params.pop("heartbeat", 5))
    batch_gossip = bool(params.pop("batch_gossip", False))
    transport = str(params.pop("transport", "sim"))
    raw_procs = params.pop("procs", None)
    procs = None if raw_procs is None else int(raw_procs)
    plan = FaultPlan(
        latency=int(params.pop("latency", 0)),
        jitter=int(params.pop("jitter", 0)),
        drop_rate=float(params.pop("drop_rate", 0.0)),
        spike_rate=float(params.pop("spike_rate", 0.0)),
        spike_ticks=int(params.pop("spike_ticks", 0)),
    )
    if params:
        raise ConfigError(f"unknown dist parameters: {sorted(params)}")
    return DistributedRuntime(
        partition,
        mode=config.scheduler,
        plan=plan,
        seed=net_seed,
        wall_interval=wall_interval,
        heartbeat=heartbeat,
        batch_gossip=batch_gossip,
        transport=transport,
        procs=procs,
    )


#: Schedulers that also exist as distributed runtimes.
DIST_SCHEDULERS = {"hdd", "hdd-to", "to", "mvto"}


def build_simulator(config: RunConfig) -> Simulator:
    """Instantiate the scheduler + simulator a config describes."""
    workload = build_workload(config.workload)
    if config.dist is not None:
        scheduler = _make_dist_runtime(config, workload.partition)
    else:
        scheduler = _make_scheduler(config.scheduler, workload.partition)
    return Simulator(
        scheduler,
        workload,
        clients=config.clients,
        seed=effective_seed(config_hash(config)),
        max_steps=config.max_steps,
        target_commits=config.target_commits,
        think_time=config.think_time,
        restart_backoff=config.restart_backoff,
        arrival_rate=config.arrival_rate,
        gc_interval=config.gc_interval,
        audit=config.audit,
    )


@dataclass
class SweepSpec:
    """A declarative sweep: schedulers x workload grid x seeds.

    ``grid`` cells are dicts of :class:`RunConfig` field overrides;
    workload parameters live under the ``workload`` key.  ``base``
    supplies shared defaults the cells override.  Expansion order is
    the deterministic nested product (cell-major, then scheduler, then
    seed) — the merged result order, independent of how runs execute.
    """

    schedulers: Sequence[str]
    grid: Sequence[Mapping[str, object]] = field(
        default_factory=lambda: [{}]
    )
    seeds: Sequence[int] = (0,)
    base: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.schedulers:
            raise ConfigError("sweep needs at least one scheduler")
        if not self.grid:
            raise ConfigError("sweep needs at least one grid cell")
        if not self.seeds:
            raise ConfigError("sweep needs at least one seed")
        for name in self.schedulers:
            if name not in SCHEDULER_FACTORIES:
                raise ConfigError(f"unknown scheduler {name!r}")
        bad = set(self.base) - _CONFIG_FIELDS - {"workload"}
        if bad:
            raise ConfigError(
                f"unknown RunConfig fields in base: {sorted(bad)}"
            )

    @classmethod
    def from_axes(
        cls,
        schedulers: Sequence[str],
        axes: Mapping[str, Sequence[object]],
        seeds: Sequence[int] = (0,),
        base: Optional[Mapping[str, object]] = None,
    ) -> "SweepSpec":
        """Cartesian-product grid from named axes.

        Axis names are :class:`RunConfig` fields, or — for anything
        else — workload builder parameters (``ro_share`` is accepted as
        an alias for ``read_only_share``).
        """
        names = list(axes)
        cells = []
        for values in product(*(axes[name] for name in names)):
            cell: dict[str, object] = {}
            workload: dict[str, object] = {}
            for name, value in zip(names, values):
                if name == "ro_share":
                    name = "read_only_share"
                if name in _CONFIG_FIELDS:
                    cell[name] = value
                else:
                    workload[name] = value
            if workload:
                cell["workload"] = workload
            cells.append(cell)
        return cls(
            schedulers=list(schedulers),
            grid=cells,
            seeds=list(seeds),
            base=dict(base or {}),
        )

    def expand(self) -> list[RunConfig]:
        """The flat, ordered run-config list this spec denotes."""
        configs = []
        base = dict(self.base)
        base_workload = dict(base.pop("workload", {"schema": "inventory"}))
        base_workload.setdefault("schema", "inventory")
        for cell in self.grid:
            cell = dict(cell)
            workload = {**base_workload, **dict(cell.pop("workload", {}))}
            unknown = set(cell) - _CONFIG_FIELDS
            if unknown:
                raise ConfigError(
                    f"unknown RunConfig fields in grid cell: {sorted(unknown)}"
                )
            for scheduler in self.schedulers:
                for seed in self.seeds:
                    configs.append(
                        RunConfig(
                            scheduler=scheduler,
                            seed=seed,
                            workload=workload,
                            **{**base, **cell},
                        )
                    )
        return configs

    def to_dict(self) -> dict[str, object]:
        return {
            "schedulers": list(self.schedulers),
            "grid": [dict(cell) for cell in self.grid],
            "seeds": list(self.seeds),
            "base": dict(self.base),
        }


_CONFIG_FIELDS = {
    "clients",
    "target_commits",
    "max_steps",
    "think_time",
    "restart_backoff",
    "gc_interval",
    "arrival_rate",
    "audit",
    "dist",
}
