"""Versions of data granules.

A *data granule* is the smallest unit of access the concurrency-control
component cares about (paper, Section 4.0 notation).  Every write
creates a new :class:`Version` stamped with the writer's initiation
timestamp — ``TS(d^v)`` in the paper.  Versions additionally carry:

* a ``committed`` flag and a ``commit_ts`` — multi-version 2PL reads
  snapshots by *commit* time, while HDD and MVTO reason about
  *initiation* time; storing both keeps one storage engine shared by
  all schedulers;
* a read timestamp ``rts`` — the registration that Protocol A is
  designed to avoid.  Schedulers that must register reads (TO, MVTO,
  Protocol B) bump it; the metrics layer counts those bumps.
"""

from __future__ import annotations

from typing import Optional

from repro.txn.clock import BOOTSTRAP_TS, BOOTSTRAP_TXN_ID, Timestamp
from repro.txn.transaction import GranuleId


class Version:
    """One version ``d^v`` of a granule ``d``."""

    __slots__ = (
        "granule",
        "ts",
        "value",
        "writer_id",
        "committed",
        "commit_ts",
        "rts",
    )

    def __init__(
        self,
        granule: GranuleId,
        ts: Timestamp,
        value: object,
        writer_id: int,
        committed: bool = False,
        commit_ts: Optional[Timestamp] = None,
    ) -> None:
        self.granule = granule
        self.ts = ts
        self.value = value
        self.writer_id = writer_id
        self.committed = committed
        self.commit_ts = commit_ts
        #: Largest initiation timestamp among registered readers of this
        #: version; ``None`` until somebody registers a read.
        self.rts: Optional[Timestamp] = None

    @classmethod
    def bootstrap(cls, granule: GranuleId, value: object) -> "Version":
        """The initial version every granule starts with (ts 0, committed)."""
        return cls(
            granule,
            BOOTSTRAP_TS,
            value,
            writer_id=BOOTSTRAP_TXN_ID,
            committed=True,
            commit_ts=BOOTSTRAP_TS,
        )

    def register_read(self, reader_ts: Timestamp) -> None:
        """Record a read timestamp (the overhead HDD avoids)."""
        if self.rts is None or reader_ts > self.rts:
            self.rts = reader_ts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "C" if self.committed else "U"
        return (
            f"Version({self.granule}^{self.ts}={self.value!r}, "
            f"w=t{self.writer_id}, {state}, rts={self.rts})"
        )
