"""Multi-version storage: versions, chains, the store, garbage collection."""

from repro.storage.chain import VersionChain
from repro.storage.gc import GCReport, WatermarkGC
from repro.storage.store import MultiVersionStore
from repro.storage.version import Version

__all__ = [
    "Version",
    "VersionChain",
    "MultiVersionStore",
    "WatermarkGC",
    "GCReport",
]
