"""Version chains: all versions of one granule, ordered by write timestamp.

The chain is kept sorted by ``ts`` (the writer's initiation timestamp),
which is the version order ``<<`` used throughout the library.  Write
timestamps are unique per granule — two transactions never share an
initiation timestamp — so the order is total.

The chain answers the visibility questions the protocols ask:

* Protocol A / C: *latest committed version with ``ts`` strictly below a
  wall* (:meth:`VersionChain.latest_before`);
* MVTO: *latest version at or below my timestamp, committed or not*
  (:meth:`VersionChain.latest_at_or_before`);
* MV2PL read-only snapshots: *latest version committed before a commit-
  time bound* (:meth:`VersionChain.latest_committed_before_commit_ts`);
* single-version engines: *the newest version* (:meth:`VersionChain.head`).
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from repro.errors import StorageError
from repro.storage.version import Version
from repro.txn.clock import Timestamp
from repro.txn.transaction import GranuleId


class VersionChain:
    """Sorted container of the versions of one granule."""

    def __init__(self, granule: GranuleId, initial_value: object = 0) -> None:
        self.granule = granule
        self._versions: list[Version] = [Version.bootstrap(granule, initial_value)]
        self._ts_index: list[Timestamp] = [self._versions[0].ts]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def install(self, version: Version) -> None:
        """Insert a new version, keeping the chain sorted by ``ts``."""
        if version.granule != self.granule:
            raise StorageError(
                f"version for {version.granule!r} installed into chain "
                f"of {self.granule!r}"
            )
        position = bisect.bisect_left(self._ts_index, version.ts)
        if (
            position < len(self._ts_index)
            and self._ts_index[position] == version.ts
        ):
            raise StorageError(
                f"{self.granule}: version with ts {version.ts} already exists"
            )
        self._versions.insert(position, version)
        self._ts_index.insert(position, version.ts)

    def remove(self, ts: Timestamp) -> Version:
        """Remove and return the version with timestamp ``ts`` (abort path)."""
        position = self._find(ts)
        if position is None:
            raise StorageError(f"{self.granule}: no version with ts {ts}")
        self._ts_index.pop(position)
        return self._versions.pop(position)

    def commit_version(self, ts: Timestamp, commit_ts: Timestamp) -> Version:
        """Mark the version written at ``ts`` committed at ``commit_ts``."""
        version = self.version_at(ts)
        version.committed = True
        version.commit_ts = commit_ts
        return version

    def prune_below(self, keep_from_ts: Timestamp) -> list[Version]:
        """Garbage-collect versions no reader at or above ``keep_from_ts``
        can see.

        Readers are handed the newest version *strictly below* their
        wall, so the snapshot base that must survive is
        ``latest_before(keep_from_ts)`` — strict, matching the read
        rule exactly (a watermark equal to a version's timestamp must
        keep the version *below* it).  Everything committed and older
        than that base is pruned and returned.
        """
        base = self.latest_before(keep_from_ts, committed_only=True)
        if base is None:
            return []
        pruned: list[Version] = []
        keep: list[Version] = []
        for version in self._versions:
            if version.committed and version.ts < base.ts:
                pruned.append(version)
            else:
                keep.append(version)
        if pruned:
            self._versions = keep
            self._ts_index = [v.ts for v in keep]
        return pruned

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def version_at(self, ts: Timestamp) -> Version:
        position = self._find(ts)
        if position is None:
            raise StorageError(f"{self.granule}: no version with ts {ts}")
        return self._versions[position]

    def has_version(self, ts: Timestamp) -> bool:
        return self._find(ts) is not None

    def latest_before(
        self, wall: Timestamp, committed_only: bool = True
    ) -> Optional[Version]:
        """Newest version with ``ts`` strictly below ``wall``.

        This is the Protocol A / Protocol C visibility rule:
        ``TS(d^0) = max TS(d^v)`` over ``TS(d^v) < wall``.
        """
        position = bisect.bisect_left(self._ts_index, wall) - 1
        while position >= 0:
            version = self._versions[position]
            if not committed_only or version.committed:
                return version
            position -= 1
        return None

    def latest_at_or_before(
        self, ts: Timestamp, committed_only: bool = False
    ) -> Optional[Version]:
        """Newest version with write timestamp ``<= ts`` (MVTO read rule)."""
        return self.latest_before(ts + 1, committed_only=committed_only)

    def latest_committed_before_commit_ts(
        self, bound: Timestamp
    ) -> Optional[Version]:
        """Newest version with ``commit_ts < bound`` (MV2PL snapshot rule).

        Versions commit in commit-timestamp order but the chain is
        sorted by write timestamp, so this scans; chains are short in
        practice (GC) and correctness beats micro-optimisation here.
        """
        best: Optional[Version] = None
        for version in self._versions:
            if not version.committed or version.commit_ts is None:
                continue
            if version.commit_ts >= bound:
                continue
            if best is None or version.commit_ts > best.commit_ts:  # type: ignore[operator]
                best = version
        return best

    def head(self) -> Version:
        """The newest version regardless of commit state."""
        return self._versions[-1]

    def latest_committed(self) -> Version:
        for version in reversed(self._versions):
            if version.committed:
                return version
        raise StorageError(f"{self.granule}: no committed version")

    def next_after(self, ts: Timestamp) -> Optional[Version]:
        """The immediate successor version of ``ts`` in version order."""
        position = bisect.bisect_right(self._ts_index, ts)
        if position < len(self._versions):
            return self._versions[position]
        return None

    def committed_count_after(self, ts: Timestamp) -> int:
        """How many committed versions are newer than ``ts``.

        This is the *staleness* of a read that returned version ``ts``:
        0 means the read was fresh, k means k committed updates were
        already invisible to it.
        """
        position = bisect.bisect_right(self._ts_index, ts)
        return sum(1 for v in self._versions[position:] if v.committed)

    def __iter__(self) -> Iterator[Version]:
        return iter(self._versions)

    def __len__(self) -> int:
        return len(self._versions)

    def _find(self, ts: Timestamp) -> Optional[int]:
        position = bisect.bisect_left(self._ts_index, ts)
        if (
            position < len(self._ts_index)
            and self._ts_index[position] == ts
        ):
            return position
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VersionChain({self.granule}, {self._versions!r})"
