"""Version chains: all versions of one granule, ordered by write timestamp.

The chain is kept sorted by ``ts`` (the writer's initiation timestamp),
which is the version order ``<<`` used throughout the library.  Write
timestamps are unique per granule — two transactions never share an
initiation timestamp — so the order is total.

The chain answers the visibility questions the protocols ask:

* Protocol A / C: *latest committed version with ``ts`` strictly below a
  wall* (:meth:`VersionChain.latest_before`);
* MVTO: *latest version at or below my timestamp, committed or not*
  (:meth:`VersionChain.latest_at_or_before`);
* MV2PL read-only snapshots: *latest version committed before a commit-
  time bound* (:meth:`VersionChain.latest_committed_before_commit_ts`);
* single-version engines: *the newest version* (:meth:`VersionChain.head`).

Frozen prefix (DESIGN.md §12): by Theorem 1 every version below the
oldest active initiation of the granule's segment class is final —
never mutated, never joined by a late sibling, always committed.  The
scheduler advances :attr:`VersionChain.frozen_below` to that mark, and
``latest_before`` answers queries at walls at or below it from a
permanent ``wall -> version`` cache.  Entries below the mark can never
be invalidated (mutations only touch the unfrozen suffix, which the
mutators assert), so the cache needs no invalidation protocol — only
GC trims keys that no future reader can query.

Admission (DESIGN.md §12): caching a (chain, wall) entry only pays if
the pair is queried again, and most walls never are — Protocol A walls
are keyed to initiation timestamps, so they mostly die after one
transaction.  A shared :class:`WallPopularity` tracker (one per
:class:`~repro.storage.store.MultiVersionStore`) counts wall reuse
*across the store*: the first query of a wall anywhere answers with a
plain bisection and only records the wall; once a wall has been
queried more than once it is *hot* and chains cache their entries for
it.  Protocol C readers sharing a released ``WallSnapshot`` make the
hot walls light up after one shared read, while one-shot walls never
pay an insert.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from repro.errors import StorageError
from repro.storage.version import Version
from repro.txn.clock import Timestamp
from repro.txn.transaction import GranuleId

#: Cache sentinel distinguishing "not cached" from a cached ``None``.
_UNCACHED = object()


class WallPopularity:
    """Store-level wall-reuse tracker gating snapshot-cache admission.

    ``admit`` records one frozen-path query of ``wall`` and answers
    whether chains may cache entries for it.  A wall becomes *hot* on
    its second query anywhere in the store; admission is purely an
    optimisation gate — forgetting a wall (GC trim) merely re-runs the
    cold path, never changes an answer.
    """

    __slots__ = ("_seen_once", "_hot")

    def __init__(self) -> None:
        #: Walls queried exactly once so far.
        self._seen_once: set[Timestamp] = set()
        #: Walls queried more than once: chains cache entries for these.
        self._hot: set[Timestamp] = set()

    def admit(self, wall: Timestamp) -> bool:
        """Record a query of ``wall``; True once the wall is hot."""
        if wall in self._hot:
            return True
        if wall in self._seen_once:
            self._seen_once.discard(wall)
            self._hot.add(wall)
            return True
        self._seen_once.add(wall)
        return False

    def trim_below(self, watermark: Timestamp) -> None:
        """Forget walls below ``watermark`` (GC: unreachable forever)."""
        self._seen_once = {w for w in self._seen_once if w >= watermark}
        self._hot = {w for w in self._hot if w >= watermark}

    @property
    def hot_walls(self) -> int:
        return len(self._hot)

    @property
    def tracked_walls(self) -> int:
        return len(self._seen_once) + len(self._hot)


class VersionChain:
    """Sorted container of the versions of one granule."""

    def __init__(
        self,
        granule: GranuleId,
        initial_value: object = 0,
        admission: Optional[WallPopularity] = None,
    ) -> None:
        self.granule = granule
        boot = Version.bootstrap(granule, initial_value)
        self._versions: list[Version] = [boot]
        self._ts_index: list[Timestamp] = [boot.ts]
        #: Committed versions in commit-timestamp order, with a parallel
        #: key list for bisection — the MV2PL snapshot rule asks for the
        #: newest ``commit_ts`` below a bound, which the ``ts``-sorted
        #: chain cannot answer without a scan.
        self._commit_order: list[Version] = [boot]
        self._commit_ts_index: list[Timestamp] = [self._commit_key(boot)]
        #: Everything with ``ts`` strictly below this mark is frozen:
        #: committed, final, and outside the reach of every future
        #: install/remove/commit.  Advanced (monotonically) by the
        #: scheduler from the activity logs; 0 means "nothing frozen".
        self.frozen_below: Timestamp = 0
        #: ``wall -> latest committed version strictly below wall`` for
        #: *hot* walls at or below :attr:`frozen_below`.  Permanently
        #: valid once inserted.
        self._snap_cache: dict[Timestamp, Optional[Version]] = {}
        #: Wall-reuse admission gate, shared store-wide (a private one
        #: is created for standalone chains, degrading gracefully to
        #: per-chain popularity).
        self._admission = (
            admission if admission is not None else WallPopularity()
        )
        self.cache_hits = 0
        self.cache_misses = 0
        #: Frozen-path queries answered by a plain bisection because the
        #: wall was not hot yet — the cost a cold wall pays instead of a
        #: scan plus a dict insert.
        self.cache_cold = 0
        #: Mutation epoch for the lazily rebuilt committed-count prefix.
        self._mutations = 0
        self._prefix_epoch = -1
        self._committed_prefix: list[int] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def install(self, version: Version) -> None:
        """Insert a new version, keeping the chain sorted by ``ts``."""
        if version.granule != self.granule:
            raise StorageError(
                f"version for {version.granule!r} installed into chain "
                f"of {self.granule!r}"
            )
        if version.ts < self.frozen_below:
            raise StorageError(
                f"{self.granule}: install at ts {version.ts} below frozen "
                f"mark {self.frozen_below} — frozen prefix is immutable"
            )
        index = self._ts_index
        if version.ts > index[-1]:
            # Writers are admitted in initiation order far more often
            # than not, so the common install is a pure append.
            self._versions.append(version)
            index.append(version.ts)
        else:
            position = bisect.bisect_left(index, version.ts)
            if position < len(index) and index[position] == version.ts:
                raise StorageError(
                    f"{self.granule}: version with ts {version.ts} "
                    "already exists"
                )
            self._versions.insert(position, version)
            index.insert(position, version.ts)
        if version.committed:
            self._index_commit(version)
        self._mutations += 1

    def remove(self, ts: Timestamp) -> Version:
        """Remove and return the version with timestamp ``ts`` (abort path)."""
        if ts < self.frozen_below:
            raise StorageError(
                f"{self.granule}: remove at ts {ts} below frozen mark "
                f"{self.frozen_below} — frozen prefix is immutable"
            )
        position = self._find(ts)
        if position is None:
            raise StorageError(f"{self.granule}: no version with ts {ts}")
        self._ts_index.pop(position)
        version = self._versions.pop(position)
        if version.committed:
            self._drop_commit(version)
        self._mutations += 1
        return version

    def commit_version(self, ts: Timestamp, commit_ts: Timestamp) -> Version:
        """Mark the version written at ``ts`` committed at ``commit_ts``."""
        if ts < self.frozen_below:
            raise StorageError(
                f"{self.granule}: commit at ts {ts} below frozen mark "
                f"{self.frozen_below} — frozen prefix is immutable"
            )
        version = self.version_at(ts)
        if version.committed:
            # Re-committing would duplicate the commit-ts index entry
            # (and, if commit_ts changed, strand the old one under a
            # stale key) — the idempotent path is a no-op.
            if version.commit_ts != commit_ts:
                raise StorageError(
                    f"{self.granule}: version at ts {ts} already "
                    f"committed at {version.commit_ts}, refusing "
                    f"re-commit at {commit_ts}"
                )
            return version
        version.committed = True
        version.commit_ts = commit_ts
        self._index_commit(version)
        self._mutations += 1
        return version

    def prune_below(self, keep_from_ts: Timestamp) -> list[Version]:
        """Garbage-collect versions no reader at or above ``keep_from_ts``
        can see.

        Readers are handed the newest version *strictly below* their
        wall, so the snapshot base that must survive is
        ``latest_before(keep_from_ts)`` — strict, matching the read
        rule exactly (a watermark equal to a version's timestamp must
        keep the version *below* it).  Everything committed and older
        than that base is pruned and returned.  The lookup deliberately
        bypasses the snapshot cache and its admission accounting: a GC
        watermark is queried once per chain per pass, precisely the
        access pattern the admission policy exists to keep *out* of the
        cache.
        """
        base = self._scan_before(keep_from_ts, committed_only=True)
        if base is None:
            return []
        pruned: list[Version] = []
        keep: list[Version] = []
        for version in self._versions:
            if version.committed and version.ts < base.ts:
                pruned.append(version)
            else:
                keep.append(version)
        if pruned:
            self._versions = keep
            self._ts_index = [v.ts for v in keep]
            dead = {id(v) for v in pruned}
            self._commit_order = [
                v for v in self._commit_order if id(v) not in dead
            ]
            self._commit_ts_index = [
                self._commit_key(v) for v in self._commit_order
            ]
            if self._snap_cache:
                # Keys below the watermark can never be queried again
                # (GC safety: no present or future read undercuts it);
                # keys at or above it resolve to versions at or above
                # ``base``, which all survived.
                self._snap_cache = {
                    wall: version
                    for wall, version in self._snap_cache.items()
                    if wall >= keep_from_ts
                }
            self._mutations += 1
        return pruned

    def advance_frozen(self, mark: Timestamp) -> None:
        """Raise the frozen-prefix mark (monotone; lower marks ignored).

        Soundness is the caller's contract: every version with ``ts``
        below ``mark`` must be committed and no future mutation may
        land below it.  ``I_old`` of the granule's segment class
        satisfies both (writes stay in the writer's root segment and
        carry its initiation timestamp).  In debug builds the committed
        half of the contract is checked on the newly frozen delta —
        each version is inspected exactly once across all advances, so
        the check stays amortised-linear — which is what lets the
        cached read path serve ``committed_only=False`` queries from
        committed-only answers (no uncommitted version can sit below
        the mark).
        """
        if mark <= self.frozen_below:
            return
        if __debug__:
            lo = bisect.bisect_left(self._ts_index, self.frozen_below)
            hi = bisect.bisect_left(self._ts_index, mark)
            for position in range(lo, hi):
                version = self._versions[position]
                assert version.committed, (
                    f"{self.granule}: advance_frozen({mark}) would "
                    f"freeze uncommitted version at ts {version.ts} — "
                    "caller broke the Theorem-1 contract"
                )
        self.frozen_below = mark

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def version_at(self, ts: Timestamp) -> Version:
        position = self._find(ts)
        if position is None:
            raise StorageError(f"{self.granule}: no version with ts {ts}")
        return self._versions[position]

    def has_version(self, ts: Timestamp) -> bool:
        return self._find(ts) is not None

    def latest_before(
        self, wall: Timestamp, committed_only: bool = True
    ) -> Optional[Version]:
        """Newest version with ``ts`` strictly below ``wall``.

        This is the Protocol A / Protocol C visibility rule:
        ``TS(d^0) = max TS(d^v)`` over ``TS(d^v) < wall``.

        Walls at or below :attr:`frozen_below` take the frozen path:
        below the mark every version is committed and final, so the
        answer never changes — the ``committed_only`` flag cannot
        matter, an invariant :meth:`advance_frozen` debug-checks
        instead of trusting.  Hot walls (queried more than once across
        the store, per :class:`WallPopularity`) are served from — and
        admitted into — the permanent snapshot cache; cold walls cost
        exactly one bisection, with no insert.
        """
        if wall <= self.frozen_below:
            cached = self._snap_cache.get(wall, _UNCACHED)
            if cached is not _UNCACHED:
                self.cache_hits += 1
                return cached  # type: ignore[return-value]
            # Inlined _frozen_before + WallPopularity.admit: this branch
            # runs per frozen read, and the call overhead alone was
            # measurable against the one-bisection scan it replaces.
            position = bisect.bisect_left(self._ts_index, wall) - 1
            version = self._versions[position] if position >= 0 else None
            admission = self._admission
            if wall in admission._hot:
                self.cache_misses += 1
                self._snap_cache[wall] = version
            elif wall in admission._seen_once:
                admission._seen_once.discard(wall)
                admission._hot.add(wall)
                self.cache_misses += 1
                self._snap_cache[wall] = version
            else:
                admission._seen_once.add(wall)
                self.cache_cold += 1
            return version
        return self._scan_before(wall, committed_only)

    def _frozen_before(self, wall: Timestamp) -> Optional[Version]:
        """``latest_before`` under the frozen invariant: one bisection.

        Every version below ``wall <= frozen_below`` is committed, so
        the newest ``ts < wall`` needs no committed-flag walk.
        (:meth:`latest_before` inlines this on its frozen branch; kept
        as the readable statement of that branch's lookup.)
        """
        position = bisect.bisect_left(self._ts_index, wall) - 1
        if position < 0:
            return None
        return self._versions[position]

    def _scan_before(
        self, wall: Timestamp, committed_only: bool
    ) -> Optional[Version]:
        position = bisect.bisect_left(self._ts_index, wall) - 1
        while position >= 0:
            version = self._versions[position]
            if not committed_only or version.committed:
                return version
            position -= 1
        return None

    def latest_at_or_before(
        self, ts: Timestamp, committed_only: bool = False
    ) -> Optional[Version]:
        """Newest version with write timestamp ``<= ts`` (MVTO read rule)."""
        return self.latest_before(ts + 1, committed_only=committed_only)

    def latest_committed_before_commit_ts(
        self, bound: Timestamp
    ) -> Optional[Version]:
        """Newest version with ``commit_ts < bound`` (MV2PL snapshot rule).

        Served from the commit-timestamp index — one bisection instead
        of the full-chain scan the ``ts`` order would force.
        """
        position = bisect.bisect_left(self._commit_ts_index, bound) - 1
        if position < 0:
            return None
        return self._commit_order[position]

    def head(self) -> Version:
        """The newest version regardless of commit state."""
        return self._versions[-1]

    def latest_committed(self) -> Version:
        for version in reversed(self._versions):
            if version.committed:
                return version
        raise StorageError(f"{self.granule}: no committed version")

    def next_after(self, ts: Timestamp) -> Optional[Version]:
        """The immediate successor version of ``ts`` in version order."""
        position = bisect.bisect_right(self._ts_index, ts)
        if position < len(self._versions):
            return self._versions[position]
        return None

    def committed_count_after(self, ts: Timestamp) -> int:
        """How many committed versions are newer than ``ts``.

        This is the *staleness* of a read that returned version ``ts``:
        0 means the read was fresh, k means k committed updates were
        already invisible to it.  Answered from a cumulative
        committed-count prefix, rebuilt lazily when the chain has
        mutated since the last query — runs of queries between
        mutations cost one bisection each instead of a suffix scan.
        """
        if self._prefix_epoch != self._mutations:
            running = 0
            prefix = [0] * (len(self._versions) + 1)
            for index, version in enumerate(self._versions):
                if version.committed:
                    running += 1
                prefix[index + 1] = running
            self._committed_prefix = prefix
            self._prefix_epoch = self._mutations
        position = bisect.bisect_right(self._ts_index, ts)
        prefix = self._committed_prefix
        return prefix[-1] - prefix[position]

    def __iter__(self) -> Iterator[Version]:
        return iter(self._versions)

    def __len__(self) -> int:
        return len(self._versions)

    def _find(self, ts: Timestamp) -> Optional[int]:
        position = bisect.bisect_left(self._ts_index, ts)
        if (
            position < len(self._ts_index)
            and self._ts_index[position] == ts
        ):
            return position
        return None

    @staticmethod
    def _commit_key(version: Version) -> Timestamp:
        """Sort key of ``version`` in the commit-ts index.

        ``commit_ts`` is ``None`` only for bootstrap-style versions
        that predate every real commit, so they key to 0 — explicitly,
        not via ``commit_ts or 0``, which would also coerce a genuine
        commit timestamp of 0 and make the two indistinguishable.
        """
        return 0 if version.commit_ts is None else version.commit_ts

    def _index_commit(self, version: Version) -> None:
        key = self._commit_key(version)
        index = self._commit_ts_index
        if not index or key >= index[-1]:
            # Commits overwhelmingly arrive in commit-timestamp order.
            self._commit_order.append(version)
            index.append(key)
        else:
            position = bisect.bisect_right(index, key)
            self._commit_order.insert(position, version)
            index.insert(position, key)

    def _drop_commit(self, version: Version) -> None:
        """Remove ``version`` from the commit-ts index (abort path).

        The key-directed walk must cover the *whole* run of equal keys
        — several versions may share one (every ``commit_ts=None``
        entry keys to 0) — and must never stop early on an identity
        mismatch, or a removed version would linger in
        :attr:`_commit_order` and be served by
        :meth:`latest_committed_before_commit_ts`.  If the stored key
        went stale (``commit_ts`` mutated after indexing), the identity
        sweep below still guarantees removal.
        """
        key = self._commit_key(version)
        order = self._commit_order
        index = self._commit_ts_index
        position = bisect.bisect_left(index, key)
        while position < len(order) and index[position] == key:
            if order[position] is version:
                order.pop(position)
                index.pop(position)
                return
            position += 1
        for position, entry in enumerate(order):
            if entry is version:
                order.pop(position)
                index.pop(position)
                return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VersionChain({self.granule}, {self._versions!r})"
