"""The multi-version store: a dictionary of version chains.

One :class:`MultiVersionStore` backs every scheduler in the library.
Granules are created lazily with a bootstrap version (ts 0) so reads
always find something; the paper assumes a populated database and this
removes "missing row" noise from the experiments.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.storage.chain import VersionChain, WallPopularity
from repro.storage.version import Version
from repro.txn.clock import Timestamp
from repro.txn.transaction import GranuleId


class MultiVersionStore:
    """Granule id -> :class:`VersionChain`, with lazy bootstrap.

    Parameters
    ----------
    initial_value:
        Value of the bootstrap version for lazily-created granules, or
        a callable ``granule_id -> value``.
    """

    def __init__(
        self,
        initial_value: object | Callable[[GranuleId], object] = 0,
    ) -> None:
        self._chains: dict[GranuleId, VersionChain] = {}
        self._initial_value = initial_value
        #: Wall-reuse admission gate for the frozen-prefix snapshot
        #: caches, shared by every chain: a wall queried more than once
        #: *anywhere* in the store is hot, and only hot walls earn
        #: cache entries (DESIGN.md §12).
        self.wall_popularity = WallPopularity()

    def chain(self, granule: GranuleId) -> VersionChain:
        existing = self._chains.get(granule)
        if existing is not None:
            return existing
        if callable(self._initial_value):
            value = self._initial_value(granule)
        else:
            value = self._initial_value
        created = VersionChain(
            granule, initial_value=value, admission=self.wall_popularity
        )
        self._chains[granule] = created
        return created

    def seed(self, granule: GranuleId, value: object) -> VersionChain:
        """Explicitly create ``granule`` with a given initial value."""
        if granule in self._chains:
            raise KeyError(f"granule {granule!r} already exists")
        chain = VersionChain(
            granule, initial_value=value, admission=self.wall_popularity
        )
        self._chains[granule] = chain
        return chain

    def install(self, version: Version) -> None:
        self.chain(version.granule).install(version)

    def granules(self) -> list[GranuleId]:
        return list(self._chains)

    def __contains__(self, granule: GranuleId) -> bool:
        return granule in self._chains

    def __iter__(self) -> Iterator[VersionChain]:
        return iter(self._chains.values())

    # ------------------------------------------------------------------
    # Whole-store statistics (used by GC and the benchmarks)
    # ------------------------------------------------------------------
    def total_versions(self) -> int:
        return sum(len(chain) for chain in self._chains.values())

    def snapshot_cache_stats(self) -> tuple[int, int]:
        """Aggregate frozen-prefix cache ``(hits, misses)`` over all chains."""
        hits = 0
        misses = 0
        for chain in self._chains.values():
            hits += chain.cache_hits
            misses += chain.cache_misses
        return hits, misses

    def snapshot_cache_report(self) -> dict[str, int]:
        """Full admission-policy accounting across the store.

        ``hits``
            frozen-path queries served from a snapshot cache;
        ``misses``
            admitted queries that scanned once and inserted an entry;
        ``cold``
            cold-wall queries answered by a single bisection, no insert
            (the cost the admission policy saves vs always-insert);
        ``entries``
            live cache entries over all chains;
        ``hot_walls`` / ``tracked_walls``
            distinct walls promoted to hot / still being counted.
        """
        hits = misses = cold = entries = 0
        for chain in self._chains.values():
            hits += chain.cache_hits
            misses += chain.cache_misses
            cold += chain.cache_cold
            entries += len(chain._snap_cache)
        return {
            "hits": hits,
            "misses": misses,
            "cold": cold,
            "entries": entries,
            "hot_walls": self.wall_popularity.hot_walls,
            "tracked_walls": self.wall_popularity.tracked_walls,
        }

    def trim_wall_popularity(self, watermark: Timestamp) -> None:
        """GC hook: forget admission state for walls below ``watermark``.

        Purely hygiene — a forgotten wall re-runs the cold path if it
        is somehow queried again; no cached answer ever changes.
        """
        self.wall_popularity.trim_below(watermark)

    def committed_value(
        self, granule: GranuleId, before: Optional[Timestamp] = None
    ) -> object:
        """Convenience: the latest committed value, optionally below a wall."""
        chain = self.chain(granule)
        if before is None:
            return chain.latest_committed().value
        version = chain.latest_before(before, committed_only=True)
        if version is None:
            raise KeyError(
                f"{granule!r}: no committed version before {before}"
            )
        return version.value
