"""Garbage collection of old versions (paper Section 7.3, item 3).

The paper defers version maintenance to future work; we implement the
natural watermark collector.  A version of a granule in segment ``D_j``
is reclaimable once no present or future reader can be handed it:

* Protocol A readers see versions below ``A_i^j(I(t))`` walls, which
  only move forward in time;
* Protocol C readers see versions below released time-wall components,
  and only walls released before their initiation;

so the *minimum over every wall any live or future transaction may
use* is a safe watermark: everything strictly older than the newest
committed version below it can never be read again.

:class:`WatermarkGC` is deliberately decoupled from any particular
scheduler — callers feed it a watermark per segment (the HDD scheduler
derives one; baselines can use "oldest active transaction") and it
prunes chains, reporting how much was reclaimed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.store import MultiVersionStore
from repro.txn.clock import Timestamp
from repro.txn.transaction import GranuleId, SegmentId


@dataclass
class GCReport:
    """Outcome of one collection pass."""

    pruned_versions: int = 0
    per_granule: dict[GranuleId, int] = field(default_factory=dict)
    #: Time walls retired alongside this pass (HDD scheduler only; the
    #: wall lifecycle and version GC are driven together, DESIGN.md §8).
    walls_retired: int = 0
    #: Wall-clock duration of the whole pass (wall refresh + retirement
    #: + watermark derivation + pruning) — makes the bounded-mode GC
    #: overhead attributable instead of folded into throughput noise.
    duration_s: float = 0.0

    def merge(self, granule: GranuleId, count: int) -> None:
        if count:
            self.pruned_versions += count
            self.per_granule[granule] = (
                self.per_granule.get(granule, 0) + count
            )


class WatermarkGC:
    """Prune versions no visibility rule can reach any more.

    Parameters
    ----------
    store:
        The store to collect.
    segment_of:
        Maps a granule to its segment so per-segment watermarks apply;
        pass ``lambda g: ""`` with a single watermark for flat stores.
    """

    def __init__(
        self,
        store: MultiVersionStore,
        segment_of,
    ) -> None:
        self._store = store
        self._segment_of = segment_of

    def collect(
        self, watermarks: dict[SegmentId, Timestamp]
    ) -> GCReport:
        """Prune each chain below its segment's watermark.

        Chains in segments with no watermark entry are left alone.  The
        newest committed version at or below the watermark is always
        kept (it is the snapshot base for readers at the wall).
        """
        report = GCReport()
        for chain in self._store:
            segment = self._segment_of(chain.granule)
            watermark = watermarks.get(segment)
            if watermark is None:
                continue
            pruned = chain.prune_below(watermark)
            report.merge(chain.granule, len(pruned))
        if watermarks:
            # Wall-popularity entries below every watermark can never be
            # queried again; trimming them is hygiene only (admission is
            # an optimisation gate, not a correctness structure), so the
            # global min over the per-segment watermarks is safe even
            # when some segments were not collected this pass.
            self._store.trim_wall_popularity(min(watermarks.values()))
        return report
