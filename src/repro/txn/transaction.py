"""Transaction objects and their lifecycle.

A :class:`Transaction` is a passive record: schedulers mutate its status
and bookkeeping while the driver (a test, an example, or the simulator)
issues its reads and writes.  The lifecycle is::

    ACTIVE --commit()--> COMMITTED
    ACTIVE --abort()---> ABORTED

The paper's notation maps onto attributes as follows:

* ``I(t)``  -> :attr:`Transaction.initiation_ts` (assigned at begin)
* ``C(t)``  -> :attr:`Transaction.commit_ts` (assigned at commit)
* ``w(t)``  -> :attr:`Transaction.write_set`
* ``r(t)``  -> :attr:`Transaction.read_set`
* ``a(t)``  -> :meth:`Transaction.access_set`
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import InvalidTransactionState
from repro.txn.clock import Timestamp

GranuleId = str
SegmentId = str


class TransactionStatus(enum.Enum):
    """The three terminal-or-not states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionKind(enum.Enum):
    """Update vs read-only, the distinction Section 5 revolves around."""

    UPDATE = "update"
    READ_ONLY = "read_only"


class Transaction:
    """One client transaction as seen by a scheduler.

    Parameters
    ----------
    txn_id:
        Unique id assigned by the scheduler.
    initiation_ts:
        ``I(t)``, the logical initiation timestamp.
    kind:
        Update or read-only.
    class_id:
        For HDD update transactions, the transaction class (== the root
        segment it writes).  ``None`` for read-only transactions and for
        baselines that do not classify transactions.
    """

    def __init__(
        self,
        txn_id: int,
        initiation_ts: Timestamp,
        kind: TransactionKind = TransactionKind.UPDATE,
        class_id: Optional[SegmentId] = None,
    ) -> None:
        self.txn_id = txn_id
        self.initiation_ts = initiation_ts
        self.kind = kind
        self.class_id = class_id
        self.status = TransactionStatus.ACTIVE
        self.commit_ts: Optional[Timestamp] = None
        self.abort_ts: Optional[Timestamp] = None
        self.abort_reason: Optional[str] = None
        self.read_set: set[GranuleId] = set()
        self.write_set: set[GranuleId] = set()
        #: Private workspace: granule -> value written (pre-commit image).
        self.workspace: dict[GranuleId, object] = {}

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE

    @property
    def is_committed(self) -> bool:
        return self.status is TransactionStatus.COMMITTED

    @property
    def is_aborted(self) -> bool:
        return self.status is TransactionStatus.ABORTED

    @property
    def is_read_only(self) -> bool:
        return self.kind is TransactionKind.READ_ONLY

    @property
    def end_ts(self) -> Optional[Timestamp]:
        """Commit or abort time; ``None`` while active.

        The activity-link machinery treats a transaction as *active at
        m* iff ``initiation_ts < m < end_ts`` (paper Section 4.1, with
        abort folded in as discussed in DESIGN.md).
        """
        if self.is_committed:
            return self.commit_ts
        if self.is_aborted:
            return self.abort_ts
        return None

    def active_at(self, at_time: Timestamp) -> bool:
        """Was this transaction active (uncommitted, un-aborted) at ``at_time``?"""
        if self.initiation_ts >= at_time:
            return False
        end = self.end_ts
        return end is None or end > at_time

    # ------------------------------------------------------------------
    # Lifecycle transitions (called by schedulers only)
    # ------------------------------------------------------------------
    def record_read(self, granule: GranuleId) -> None:
        self._require_active("read")
        self.read_set.add(granule)

    def record_write(self, granule: GranuleId, value: object) -> None:
        self._require_active("write")
        self.write_set.add(granule)
        self.workspace[granule] = value

    def mark_committed(self, commit_ts: Timestamp) -> None:
        self._require_active("commit")
        if commit_ts <= self.initiation_ts:
            raise InvalidTransactionState(
                f"txn {self.txn_id}: commit ts {commit_ts} <= initiation "
                f"ts {self.initiation_ts}"
            )
        self.status = TransactionStatus.COMMITTED
        self.commit_ts = commit_ts

    def mark_aborted(self, abort_ts: Timestamp, reason: str) -> None:
        if self.is_aborted:
            return  # idempotent: cascades may hit a transaction twice
        self._require_active("abort")
        self.status = TransactionStatus.ABORTED
        self.abort_ts = abort_ts
        self.abort_reason = reason

    def access_set(self) -> set[GranuleId]:
        """``a(t) = r(t) U w(t)`` from Section 3.2."""
        return self.read_set | self.write_set

    def _require_active(self, action: str) -> None:
        if not self.is_active:
            raise InvalidTransactionState(
                f"cannot {action}: txn {self.txn_id} is {self.status.value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(id={self.txn_id}, I={self.initiation_ts}, "
            f"kind={self.kind.value}, class={self.class_id}, "
            f"status={self.status.value})"
        )
