"""Transactions, logical time, schedules and the serializability oracle."""

from repro.txn.clock import (
    BOOTSTRAP_TS,
    BOOTSTRAP_TXN_ID,
    EPSILON,
    LogicalClock,
    Timestamp,
)
from repro.txn.depgraph import (
    Dependency,
    build_dependency_graph,
    find_dependency_cycle,
    is_serializable,
    serialization_order,
)
from repro.txn.schedule import Action, Schedule, Step
from repro.txn.transaction import (
    GranuleId,
    SegmentId,
    Transaction,
    TransactionKind,
    TransactionStatus,
)

__all__ = [
    "BOOTSTRAP_TS",
    "BOOTSTRAP_TXN_ID",
    "EPSILON",
    "LogicalClock",
    "Timestamp",
    "Dependency",
    "build_dependency_graph",
    "find_dependency_cycle",
    "is_serializable",
    "serialization_order",
    "Action",
    "Schedule",
    "Step",
    "GranuleId",
    "SegmentId",
    "Transaction",
    "TransactionKind",
    "TransactionStatus",
]
