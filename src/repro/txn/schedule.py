"""Multi-version schedules, exactly as defined in Section 2 of the paper.

A *schedule* is a sequence of steps ``<transaction id, action, d^v>``
where the action is read or write and ``d^v`` names a version of a data
granule.  Every scheduler in this library appends to a
:class:`Schedule` as it grants operations, so that the serializability
oracle (:mod:`repro.txn.depgraph`) can audit any execution after the
fact.

Commit and abort markers are recorded too.  They are not steps in the
paper's sense, but the oracle needs them to restrict the dependency
graph to committed transactions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.txn.clock import Timestamp
from repro.txn.transaction import GranuleId


class Action(enum.Enum):
    """Step actions.  READ/WRITE are the paper's ``r``/``w``."""

    READ = "r"
    WRITE = "w"
    COMMIT = "c"
    ABORT = "a"


@dataclass(frozen=True)
class Step:
    """One schedule step ``<txn, action, d^v>``.

    ``version_ts`` is the write timestamp of the version read or
    created; it is ``None`` for commit/abort markers.
    """

    txn_id: int
    action: Action
    granule: Optional[GranuleId] = None
    version_ts: Optional[Timestamp] = None

    def __str__(self) -> str:
        if self.action in (Action.COMMIT, Action.ABORT):
            return f"<t{self.txn_id},{self.action.value}>"
        return (
            f"<t{self.txn_id},{self.action.value},"
            f"{self.granule}^{self.version_ts}>"
        )


@dataclass
class Schedule:
    """An append-only record of an execution.

    The class offers the handful of queries the oracle and the tests
    need: iteration, filtering by action, the committed transaction
    set, and the version order of each granule.
    """

    steps: list[Step] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_read(
        self, txn_id: int, granule: GranuleId, version_ts: Timestamp
    ) -> None:
        self.steps.append(Step(txn_id, Action.READ, granule, version_ts))

    def record_write(
        self, txn_id: int, granule: GranuleId, version_ts: Timestamp
    ) -> None:
        self.steps.append(Step(txn_id, Action.WRITE, granule, version_ts))

    def record_commit(self, txn_id: int) -> None:
        self.steps.append(Step(txn_id, Action.COMMIT))

    def record_abort(self, txn_id: int) -> None:
        self.steps.append(Step(txn_id, Action.ABORT))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def committed_txn_ids(self) -> set[int]:
        """Ids of transactions with a commit marker in this schedule."""
        return {s.txn_id for s in self.steps if s.action is Action.COMMIT}

    def aborted_txn_ids(self) -> set[int]:
        return {s.txn_id for s in self.steps if s.action is Action.ABORT}

    def data_steps(self, committed_only: bool = True) -> list[Step]:
        """Read/write steps, optionally restricted to committed txns.

        Write steps of aborted transactions never contribute versions to
        the final database, and the paper's dependency graph is defined
        over the transactions that actually ran to completion, so the
        oracle uses ``committed_only=True``.
        """
        wanted = self.committed_txn_ids() if committed_only else None
        result = []
        for step in self.steps:
            if step.action not in (Action.READ, Action.WRITE):
                continue
            if wanted is not None and step.txn_id not in wanted:
                continue
            result.append(step)
        return result

    def version_order(self, granule: GranuleId) -> list[Timestamp]:
        """Committed versions of ``granule`` ordered by write timestamp.

        This is the version order ``<<`` used to resolve the paper's
        *predecessor* relation.  Write timestamps are unique per granule
        (each writer installs at its own initiation timestamp), so the
        sort is total.
        """
        committed = self.committed_txn_ids()
        versions = {
            step.version_ts
            for step in self.steps
            if step.action is Action.WRITE
            and step.granule == granule
            and step.txn_id in committed
            and step.version_ts is not None
        }
        return sorted(versions)

    def granules(self) -> set[GranuleId]:
        return {
            s.granule
            for s in self.steps
            if s.granule is not None
        }

    def __str__(self) -> str:
        return " ".join(str(s) for s in self.steps)
