"""Logical time for the HDD reproduction.

The paper's algorithms only rely on a total order over transaction
initiation and commit events; wall-clock time is never needed.  We use a
strictly monotonic integer clock so that every experiment is fully
deterministic and the paper's ``m - epsilon`` arguments become ``m - 1``.

Timestamps are plain ``int`` values.  ``0`` is reserved for the bootstrap
transaction that installs the initial version of every granule, so real
transactions always observe timestamps ``>= 1``.
"""

from __future__ import annotations

Timestamp = int

#: Timestamp of the bootstrap transaction that writes initial versions.
BOOTSTRAP_TS: Timestamp = 0

#: Transaction id of the bootstrap writer.
BOOTSTRAP_TXN_ID: int = 0

#: Smallest representable increment; the paper's ``epsilon``.
EPSILON: Timestamp = 1


class LogicalClock:
    """A strictly monotonic integer clock.

    Every call to :meth:`tick` returns a fresh, strictly larger
    timestamp.  :attr:`now` peeks at the latest issued value without
    advancing.  The clock can be advanced past a known time with
    :meth:`advance_to`, which the simulator uses to model think time.
    """

    def __init__(self, start: Timestamp = BOOTSTRAP_TS) -> None:
        if start < BOOTSTRAP_TS:
            raise ValueError(f"clock cannot start before {BOOTSTRAP_TS}")
        self._now: Timestamp = start

    @property
    def now(self) -> Timestamp:
        """The most recently issued timestamp."""
        return self._now

    def tick(self) -> Timestamp:
        """Advance the clock by one and return the new timestamp."""
        self._now += 1
        return self._now

    def advance_to(self, timestamp: Timestamp) -> Timestamp:
        """Move the clock forward to at least ``timestamp``.

        Moving backwards is a no-op: the clock never regresses.
        Returns the (possibly unchanged) current time.
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock(now={self._now})"
