"""The serializability oracle: transaction dependency graphs (Section 2).

Given a recorded multi-version :class:`~repro.txn.schedule.Schedule`,
this module rebuilds the paper's *transaction dependency graph*
``TG(S(T))`` and tests it for acyclicity.  By the theorem the paper
imports from Bernstein 1982, a schedule is serializable iff its
dependency graph is acyclic — so this oracle is what every correctness
test in the repository ultimately appeals to.

The paper's arc rules (``t2 -> t1`` means "t2 depends on t1", i.e. t2
must come *after* t1 in any equivalent serial schedule):

1. *reads-from*: ``t2`` read a version created by ``t1``;
2. *overwrites-read*: ``t2`` created a version whose immediate
   predecessor (in the version order) was read by ``t1``.

We also provide the full Bernstein–Goodman multi-version
serialization graph (``mode="mvsg"``), which generalises rule 2 to
arbitrary version-order positions; on the schedules our schedulers emit
the two tests agree (a property test checks this), but the MVSG variant
is useful when auditing hand-written schedules.

Version order: versions are ordered by write timestamp, which every
scheduler in this library sets to the writer's initiation timestamp
(multi-version engines) or assigns monotonically (single-version
engines).  See DESIGN.md §7 for why this matches the paper's
schedule-position definition on the executions we generate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.core.graph import Digraph
from repro.txn.clock import BOOTSTRAP_TXN_ID, Timestamp
from repro.txn.schedule import Action, Schedule
from repro.txn.transaction import GranuleId

DependencyMode = Literal["paper", "mvsg"]


@dataclass(frozen=True)
class Dependency:
    """One arc of the dependency graph, with provenance for diagnostics."""

    later: int  # the depending transaction (t2)
    earlier: int  # the depended-upon transaction (t1)
    granule: GranuleId
    kind: str  # "reads-from" | "overwrites-read" | "version-order"

    def __str__(self) -> str:
        return (
            f"t{self.later} -> t{self.earlier} "
            f"({self.kind} on {self.granule})"
        )


def build_dependency_graph(
    schedule: Schedule,
    mode: DependencyMode = "paper",
    include_bootstrap: bool = False,
) -> tuple[Digraph, list[Dependency]]:
    """Build ``TG(S(T))`` over the committed transactions of ``schedule``.

    Returns the digraph plus the annotated dependency list.  The
    bootstrap transaction (initial versions) is excluded by default: it
    precedes everything and only adds noise to diagnostics.
    """
    committed = schedule.committed_txn_ids()
    if include_bootstrap:
        committed = committed | {BOOTSTRAP_TXN_ID}

    # writer_of[(granule, version_ts)] -> txn id
    writer_of: dict[tuple[GranuleId, Timestamp], int] = {}
    # reads: (txn, granule, version_ts) in schedule order
    reads: list[tuple[int, GranuleId, Timestamp]] = []
    for step in schedule.data_steps(committed_only=False):
        if step.txn_id not in committed and step.txn_id != BOOTSTRAP_TXN_ID:
            continue
        assert step.granule is not None and step.version_ts is not None
        if step.action is Action.WRITE:
            writer_of[(step.granule, step.version_ts)] = step.txn_id
        else:
            reads.append((step.txn_id, step.granule, step.version_ts))

    graph = Digraph(nodes=sorted(committed))
    deps: list[Dependency] = []

    def add(later: int, earlier: int, granule: GranuleId, kind: str) -> None:
        if later == earlier:
            return
        if later not in committed or earlier not in committed:
            return
        if not graph.has_arc(later, earlier):
            graph.add_arc(later, earlier)
        deps.append(Dependency(later, earlier, granule, kind))

    # Rule 1: reads-from.
    for reader, granule, version_ts in reads:
        writer = writer_of.get((granule, version_ts), BOOTSTRAP_TXN_ID)
        add(reader, writer, granule, "reads-from")

    # Rule 2: overwrites-read (paper) or full version-order (mvsg).
    version_orders = {
        granule: schedule.version_order(granule)
        for granule in schedule.granules()
    }
    for reader, granule, read_ts in reads:
        order = version_orders[granule]
        if mode == "paper":
            successor_ts = _immediate_successor(order, read_ts)
            if successor_ts is not None:
                overwriter = writer_of.get((granule, successor_ts))
                if overwriter is not None:
                    add(overwriter, reader, granule, "overwrites-read")
        else:
            # Bernstein–Goodman: for each read r_k(x_j) and committed
            # write w_i(x_i) of the same granule, if x_i << x_j the
            # writers are ordered (t_i before t_j); otherwise the
            # reader precedes the later writer (t_k before t_i).  The
            # reads-from rule already covers the version actually read.
            read_writer = writer_of.get((granule, read_ts), BOOTSTRAP_TXN_ID)
            for other_ts in order:
                if other_ts == read_ts:
                    continue
                other_writer = writer_of.get((granule, other_ts))
                if other_writer is None:
                    continue
                if other_ts > read_ts:
                    add(other_writer, reader, granule, "version-order")
                else:
                    add(read_writer, other_writer, granule, "version-order")

    return graph, deps


def _immediate_successor(
    order: list[Timestamp], version_ts: Timestamp
) -> Optional[Timestamp]:
    """The version whose *predecessor* is ``version_ts`` (paper Section 2).

    ``order`` is the sorted committed version order; reads of the
    bootstrap version (ts 0) may not appear in it, in which case the
    successor is the first committed version.
    """
    later = [ts for ts in order if ts > version_ts]
    return min(later) if later else None


def is_serializable(
    schedule: Schedule, mode: DependencyMode = "paper"
) -> bool:
    """Serializability test: is ``TG(S(T))`` acyclic (paper's criterion)?"""
    graph, _ = build_dependency_graph(schedule, mode=mode)
    return graph.is_acyclic()


def find_dependency_cycle(
    schedule: Schedule, mode: DependencyMode = "paper"
) -> Optional[list[Dependency]]:
    """Return the dependencies forming some cycle, or ``None``.

    Useful in anomaly tests: the Figure 3/4 constructions must produce a
    concrete, explainable cycle once read protection is removed.
    """
    graph, deps = build_dependency_graph(schedule, mode=mode)
    cycle = graph.find_cycle()
    if cycle is None:
        return None
    dep_index = {(d.later, d.earlier): d for d in deps}
    arcs = list(zip(cycle, cycle[1:] + cycle[:1]))
    return [dep_index[arc] for arc in arcs if arc in dep_index]


def serialization_order(schedule: Schedule) -> list[int]:
    """An equivalent serial order of the committed transactions.

    Dependency arcs point later -> earlier, so the serial order is the
    reverse of a topological order of ``TG``.  Raises
    :class:`~repro.errors.PartitionError` if the schedule is not
    serializable.
    """
    graph, _ = build_dependency_graph(schedule)
    return list(reversed(graph.topological_order()))
