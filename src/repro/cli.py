"""Command-line experiment runner: ``python -m repro <command>``.

The subcommands, all deterministic given ``--seed``:

* ``compare`` — the measured Figure 10 table: every scheduler over the
  same transaction mix (inventory or claims schema);
* ``sweep``   — vary one knob (read-only share, hierarchy depth,
  clients, skew) and print the series.  Runs through the declarative
  sweep subsystem (:mod:`repro.sweep`): ``--workers`` fans the grid
  out across processes, ``--cache-dir`` re-uses cached cells, ``--out``
  writes the merged JSON document, and ``--check-determinism`` runs the
  grid serially *and* in parallel and fails on any divergence;
* ``anomaly`` — replay the Figure 3/4 constructions and print the
  dependency cycles the oracle finds;
* ``info``    — show a schema's decomposition (segments, critical arcs,
  transaction classes);
* ``report``  — run the headline experiments and emit a markdown
  summary (see :mod:`repro.report`);
* ``trace``   — run one scheduler with event tracing on, stream the
  trace to a JSONL file and print the live metrics registry;
* ``explain`` — reconstruct a trace file offline: run summary, latency
  breakdown, or a single transaction's timeline and wait chain;
* ``serve``   — serve one scheduler to real concurrent clients over the
  framed TCP protocol (:mod:`repro.serve`); ``--trace-out`` streams a
  JSONL trace that ``repro explain`` reads like a simulator trace;
* ``load``    — open-loop load generator against a running ``serve``:
  fixed arrival rate (or saturating arrivals), seeded workload mix,
  latency percentiles measured from *arrival* so queueing delay counts;
* ``dist``    — run the distributed segment-controller runtime over the
  deterministic fault-injecting network (:mod:`repro.dist`): latency,
  drops, partitions and crash-restarts are flags; ``--message-log``
  dumps the canonical wire trace and ``--check-determinism`` runs the
  scenario twice and fails on any divergence;
* ``explore`` — schedule-space exploration (:mod:`repro.explore`):
  search interleavings and fault plans for oracle violations, shrink
  each hit to a 1-minimal artifact (``--artifacts``), or ``--replay``
  a saved artifact byte-identically.  The default campaign hunts the
  whole mutation corpus plus the real targets.

Exit codes follow the shared convention in :mod:`repro.errors`:
``0`` ran clean, ``1`` operational error, ``2`` correctness violation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.baselines import (
    TimestampOrdering,
    TwoPhaseLocking,
)
from repro.core.partition import PartitionSummary
from repro.errors import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_VIOLATION,
    ConfigError,
    ReproError,
)
from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    TeeSink,
    TraceExplainer,
)
from repro.sim.engine import Simulator
from repro.sim.claims import build_claims_partition, build_claims_workload
from repro.sim.hierarchies import build_hierarchy_workload, chain_partition
from repro.sim.inventory import build_inventory_partition, build_inventory_workload
from repro.sim.metrics import format_table
from repro.sweep import SweepRunner, SweepSpec
from repro.sweep.spec import DIST_SCHEDULERS
from repro.sweep.spec import SCHEDULER_FACTORIES as SCHEDULERS
from repro.txn.depgraph import find_dependency_cycle

DEFAULT_COMPARISON = ["hdd", "2pl", "to", "mvto", "mv2pl", "sdd1"]


def _build_workload(
    ro_share: float,
    skew: float,
    depth: Optional[int] = None,
    schema: str = "inventory",
):
    """The (partition, workload) pair every run-style command shares."""
    if depth is not None:
        partition = chain_partition(depth)
        workload = build_hierarchy_workload(
            partition, read_only_share=ro_share, skew=skew
        )
    elif schema == "claims":
        partition = build_claims_partition()
        workload = build_claims_workload(
            partition, read_only_share=ro_share, skew=skew
        )
    else:
        partition = build_inventory_partition()
        workload = build_inventory_workload(
            partition, read_only_share=ro_share, skew=skew
        )
    return partition, workload


def _run_mix(
    name: str,
    commits: int,
    clients: int,
    seed: int,
    skew: float,
    ro_share: float,
    depth: Optional[int] = None,
    schema: str = "inventory",
) -> dict[str, object]:
    partition, workload = _build_workload(
        ro_share=ro_share, skew=skew, depth=depth, schema=schema
    )
    scheduler = SCHEDULERS[name](partition)
    result = Simulator(
        scheduler,
        workload,
        clients=clients,
        seed=seed,
        target_commits=commits,
        max_steps=max(commits * 500, 100_000),
        audit=True,
    ).run()
    stats = scheduler.stats
    return {
        "scheduler": name,
        "commits": result.commits,
        "throughput": round(result.throughput, 4),
        "reg/commit": round(stats.read_registrations / max(result.commits, 1), 3),
        "unreg/commit": round(
            stats.unregistered_reads / max(result.commits, 1), 3
        ),
        "read_blocks": stats.read_blocks,
        "aborts": stats.aborts,
        "p95_lat": round(result.p95_latency, 1),
    }


def cmd_compare(args: argparse.Namespace) -> int:
    rows = [
        _run_mix(
            name,
            commits=args.commits,
            clients=args.clients,
            seed=args.seed,
            skew=args.skew,
            ro_share=args.ro_share,
            schema=args.workload_schema,
        )
        for name in args.schedulers
    ]
    print(format_table(rows))
    return 0


def _sweep_spec(args: argparse.Namespace) -> SweepSpec:
    """The SweepSpec the CLI's knob/values flags denote."""
    cast = float if args.knob in ("ro_share", "skew") else int
    workload: dict[str, object] = {
        "schema": args.workload_schema,
        "read_only_share": args.ro_share,
        "skew": args.skew,
    }
    if args.knob == "depth":  # depth only makes sense on a chain
        workload["schema"] = "chain"
    return SweepSpec.from_axes(
        schedulers=args.schedulers,
        axes={args.knob: [cast(v) for v in args.values]},
        seeds=[args.seed],
        base={
            "target_commits": args.commits,
            "max_steps": max(args.commits * 500, 100_000),
            "clients": args.clients,
            "audit": True,
            "workload": workload,
        },
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    spec = _sweep_spec(args)
    determinism_note = None
    if args.check_determinism:
        # Run the grid twice — serially and through a process pool —
        # and require byte-identical merged documents (the CI smoke
        # job's divergence tripwire).  Cache off so both runs execute.
        par_workers = max(args.workers, 2)
        outcome = SweepRunner(workers=1).run(spec)
        parallel = SweepRunner(workers=par_workers).run(spec)
        if outcome.merged_json() != parallel.merged_json():
            print(
                "determinism check FAILED: serial and parallel sweeps "
                "produced different merged results",
                file=sys.stderr,
            )
            return EXIT_VIOLATION
        determinism_note = (
            f"determinism: workers=1 and workers={par_workers} "
            "merged byte-identically"
        )
    else:
        outcome = SweepRunner(
            workers=args.workers, cache_dir=args.cache_dir
        ).run(spec)
    if args.out:
        with open(args.out, "w") as stream:
            stream.write(outcome.merged_json())
    rows = outcome.table_rows()
    if args.knob == "ro_share":
        # the spec stores the workload-builder name; keep the CLI's
        # knob spelling in the printed series
        rows = [
            {
                ("ro_share" if key == "read_only_share" else key): value
                for key, value in row.items()
            }
            for row in rows
        ]
    print(format_table(rows))
    if determinism_note:
        print(determinism_note)
    return 0


def cmd_anomaly(args: argparse.Namespace) -> int:
    event, level, order = "events:arrival", "inventory:level", "orders:req"
    if args.figure == 3:
        scheduler = TwoPhaseLocking(read_locks=False)
        label = "2PL without read locks"
    else:
        scheduler = TimestampOrdering(register_reads=False)
        label = "timestamp ordering without read timestamps"
    t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
    scheduler.read(t3, event)
    scheduler.write(t1, event, "arrived")
    scheduler.commit(t1)
    scheduler.read(t2, event)
    scheduler.write(t2, level, 17)
    scheduler.commit(t2)
    scheduler.read(t3, level)
    scheduler.write(t3, order, "reorder")
    scheduler.commit(t3)
    cycle = find_dependency_cycle(scheduler.schedule, mode="paper")
    print(f"Figure {args.figure}: {label}")
    if cycle is None:
        print("no dependency cycle (unexpected)")
        return 1
    print("dependency cycle found:")
    for dep in cycle:
        print(f"  {dep}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import ReportScale, generate_report

    scale = ReportScale.quick() if args.quick else ReportScale()
    text = generate_report(scale)
    if args.output:
        with open(args.output, "w") as stream:
            stream.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    partition, workload = _build_workload(
        ro_share=args.ro_share, skew=args.skew, schema=args.workload_schema
    )
    scheduler = SCHEDULERS[args.scheduler](partition)
    registry = MetricsRegistry()
    with JsonlTraceSink(args.trace_out) as sink:
        result = Simulator(
            scheduler,
            workload,
            clients=args.clients,
            seed=args.seed,
            target_commits=args.commits,
            max_steps=max(args.commits * 500, 100_000),
            gc_interval=args.gc_interval,
            trace_sink=TeeSink([sink, registry]),
        ).run()
        events_written = sink.events_written
    print(format_table([result.summary()]))
    print()
    print(registry.render())
    print()
    print(f"{events_written} events -> {args.trace_out}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import is_dist_trace, load_trace

    events = load_trace(args.trace)
    if is_dist_trace(events):
        # One entry point for both runtimes: a dist trace (it carries
        # message/op-span events) goes to the causal explainer.
        return _explain_dist(events, args.txn)
    explainer = TraceExplainer(events)
    if args.txn is not None:
        print(explainer.explain_txn(args.txn))
        return 0
    print(explainer.render_summary())
    print()
    print(explainer.render_latency_breakdown())
    return 0


def _explain_dist(events, txn: Optional[int]) -> int:
    from repro.obs import CausalTrace, CriticalPathAnalyzer

    analyzer = CriticalPathAnalyzer(CausalTrace(events))
    if txn is not None:
        print(analyzer.render_txn(txn))
        return 0
    print(analyzer.render())
    return 0 if not analyzer.check() else 1


def cmd_dist_explain(args: argparse.Namespace) -> int:
    from repro.obs import load_trace

    return _explain_dist(load_trace(args.trace), args.txn)


def _dist_plan(args: argparse.Namespace):
    """The FaultPlan the dist subcommand's flags denote."""
    from repro.dist import Crash, FaultPlan, node_name

    partitions = []
    for start, end, segment in args.net_partition or []:
        partition, _ = _build_workload(
            ro_share=args.ro_share,
            skew=args.skew,
            schema=args.workload_schema,
        )
        others = [
            node_name(s) for s in partition.segments if s != segment
        ]
        partitions.append(
            FaultPlan.partition(
                int(start), int(end), [node_name(segment)], others
            )
        )
    crashes = tuple(
        Crash(node_name(segment), int(at), int(recover))
        for segment, at, recover in args.crash or []
    )
    return FaultPlan(
        latency=args.latency,
        jitter=args.jitter,
        drop_rate=args.drop,
        spike_rate=args.spike_rate,
        spike_ticks=args.spike_ticks,
        partitions=tuple(partitions),
        crashes=crashes,
    )


def _dist_run(args: argparse.Namespace, trace_sink=None, transport=None):
    from repro.dist import DistributedRuntime

    partition, workload = _build_workload(
        ro_share=args.ro_share, skew=args.skew, schema=args.workload_schema
    )
    if transport is None:
        transport = "proc" if getattr(args, "real", False) else "sim"
    runtime = DistributedRuntime(
        partition,
        mode=args.mode,
        plan=_dist_plan(args),
        seed=args.net_seed,
        batch_gossip=args.batch_gossip,
        transport=transport,
        procs=getattr(args, "procs", None),
    )
    try:
        result = Simulator(
            runtime,
            workload,
            clients=args.clients,
            seed=args.seed,
            target_commits=args.commits,
            max_steps=max(args.commits * 500, 100_000),
            audit=True,
            trace_sink=trace_sink,
        ).run()
    except BaseException:
        runtime.close()
        raise
    return runtime, result


def _wall_records(runtime) -> list[tuple]:
    walls = getattr(runtime, "walls", None)
    if walls is None:
        return []
    return [
        (w.start_class, w.base_time, w.release_ts, sorted(w.components.items()))
        for w in walls.released
    ]


def cmd_dist(args: argparse.Namespace) -> int:
    import signal as signal_mod

    from repro.sim.messages import measured_message_report

    # Graceful Ctrl-C / SIGTERM (the serve stack's convention): raise
    # KeyboardInterrupt so the with/finally blocks below flush the
    # trace, reap worker processes, and exit 1 — never a zombie or a
    # truncated JSONL file.
    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    previous_term = signal_mod.signal(signal_mod.SIGTERM, _interrupt)
    runtimes = []
    # Exit-code convention (repro.errors): a failed serializability
    # audit or determinism check is a *correctness violation* (exit 2),
    # distinct from operational errors (exit 1) — CI matrix jobs key
    # off the difference.
    try:
        if args.trace_out:
            with JsonlTraceSink(args.trace_out) as sink:
                runtime, result = _dist_run(args, trace_sink=sink)
                runtimes.append(runtime)
                events_written = sink.events_written
            print(f"{events_written} events -> {args.trace_out}")
        else:
            runtime, result = _dist_run(args)
            runtimes.append(runtime)
        if args.check_determinism and args.real:
            # Process runs are nondeterministic in timing only, so the
            # twin check replays the same seed through the SimNetwork
            # and demands the *logical* outcome — committed schedule,
            # stats, walls — byte-identical (DESIGN.md §16).
            twin, _ = _dist_run(args, transport="sim")
            runtimes.append(twin)
            if str(runtime.schedule) != str(twin.schedule):
                print("TWIN DIVERGENCE: committed schedules diverge")
                return EXIT_VIOLATION
            if runtime.stats != twin.stats:
                print("TWIN DIVERGENCE: stats diverge")
                return EXIT_VIOLATION
            if _wall_records(runtime) != _wall_records(twin):
                print("TWIN DIVERGENCE: released walls diverge")
                return EXIT_VIOLATION
            print(
                "twin check passed: process run byte-identical to the "
                "deterministic SimNetwork replay"
            )
        elif args.check_determinism:
            # The second run is always untraced, so with --trace-out this
            # check doubles as the non-perturbation assertion: tracing may
            # not change a single byte of the message log or schedule.
            second, _ = _dist_run(args)
            runtimes.append(second)
            if runtime.network.log_lines() != second.network.log_lines():
                print("DETERMINISM FAILURE: message logs diverge")
                return EXIT_VIOLATION
            if str(runtime.schedule) != str(second.schedule):
                print("DETERMINISM FAILURE: committed schedules diverge")
                return EXIT_VIOLATION
            print("determinism check passed: two runs byte-identical")
        # Snapshot while workers are alive: on the proc transport the
        # stats property is a control RPC fan-out to the children.
        stats = runtime.stats
    except ConfigError:
        raise  # bad flags: argparse-level failure, not a violation
    except KeyboardInterrupt:
        print("interrupted: traces flushed, workers reaped", file=sys.stderr)
        return EXIT_ERROR
    except ReproError as exc:
        print(f"AUDIT VIOLATION: {exc}", file=sys.stderr)
        return EXIT_VIOLATION
    finally:
        for rt in runtimes:
            rt.close()
        signal_mod.signal(signal_mod.SIGTERM, previous_term)
    network = runtime.network
    report, extras = measured_message_report(runtime)
    rows = {
        "scheduler": runtime.name,
        "commits": result.commits,
        "aborts": stats.aborts,
        "throughput": round(result.throughput, 4),
        "net.sent": len(network.log),
        "net.delivered": network.delivered,
        "net.dropped": sum(network.dropped_by_kind.values()),
        "msg.data": report.data_messages,
        "msg.sync": report.synchronization_messages,
        "msg.runtime": sum(
            count
            for key, count in extras.items()
            if key.startswith(("pair.", "oneway.")) or key == "retransmit"
        ),
    }
    width = max(len(k) for k in rows)
    for key, value in rows.items():
        print(f"{key.ljust(width)}  {value}")
    if args.message_log:
        with open(args.message_log, "w", encoding="utf-8") as handle:
            handle.write("\n".join(network.log_lines()) + "\n")
        print(f"message trace -> {args.message_log}")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.explore import (
        campaign_units,
        load_artifact,
        replay_artifact,
        run_campaign,
    )

    if args.replay:
        data = load_artifact(args.replay)
        outcome = replay_artifact(data)
        if outcome.ok:
            print(f"replay OK: {outcome.detail}")
            return EXIT_OK
        print(f"replay FAILED: {outcome.detail}", file=sys.stderr)
        return EXIT_ERROR

    units = campaign_units(
        seeds=list(range(args.seeds)),
        episodes=args.episodes,
        neighborhood=args.neighborhood,
        fuzz=args.fuzz,
        rate=args.rate,
        minimize_tests=args.minimize_tests,
        mutants=args.target or None,
        include_real=not args.skip_real,
    )
    result = run_campaign(units, workers=args.workers)
    summary = result.summary()
    if args.artifacts:
        directory = Path(args.artifacts)
        directory.mkdir(parents=True, exist_ok=True)
        for unit in result.units:
            for index, finding in enumerate(unit["findings"]):
                path = directory / (
                    f"{unit['target']}-seed{unit['seed']}-{index}.json"
                )
                path.write_text(
                    json.dumps(
                        finding["artifact"], sort_keys=True, indent=2
                    )
                    + "\n"
                )
        print(f"artifacts -> {directory}")
    if args.summary_out:
        with open(args.summary_out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, sort_keys=True, indent=2)
            handle.write("\n")
    for unit in result.units:
        phases = [finding["phase"] for finding in unit["findings"]]
        kinds = sorted(
            {
                kind
                for finding in unit["findings"]
                for kind in finding["kinds"]
            }
        )
        verdict = f"CAUGHT {kinds} in {phases}" if unit["caught"] else "clean"
        print(
            f"{unit['target']} seed={unit['seed']} "
            f"runs={unit['runs']}: {verdict}"
        )
    corpus = summary["corpus"]
    print(
        f"corpus: {corpus['caught']}/{corpus['total']} caught, "
        f"minimized={corpus['all_minimized']}; "
        f"real targets: {summary['clean']['violations']} violation(s) "
        f"across {summary['clean']['real_targets']} unit(s); "
        f"{summary['runs']} runs"
    )
    if summary["clean"]["violations"]:
        print(
            "VIOLATION: a real (unmutated) target failed an oracle",
            file=sys.stderr,
        )
        return EXIT_VIOLATION
    if result.replay_failures:
        print(
            f"replay failures: {result.replay_failures}", file=sys.stderr
        )
        return EXIT_ERROR
    if corpus["total"] and corpus["caught"] < corpus["total"]:
        missed = sorted(
            name
            for name, hit in corpus["by_mutant"].items()
            if not hit
        )
        print(f"corpus mutants missed: {missed}", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


async def _serve_async(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.obs import JsonlTraceSink
    from repro.serve import TransactionServer

    partition, _workload = _build_workload(
        ro_share=args.ro_share, skew=args.skew, schema=args.workload_schema
    )
    scheduler = SCHEDULERS[args.scheduler](partition)
    sink = JsonlTraceSink(args.trace_out) if args.trace_out else None
    if sink is not None:
        scheduler.set_sink(sink)
    server = TransactionServer(scheduler, gc_every=args.gc_every)
    host, port = await server.start_tcp(args.host, args.port)
    # Explicit handlers, not KeyboardInterrupt: a server launched from
    # a non-interactive shell (CI, `... &`) inherits SIGINT ignored, so
    # the default Ctrl-C path would never fire there — and SIGTERM
    # should flush the trace and print stats too, not just die.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    print(f"serving {scheduler.name} on {host}:{port} (ctrl-c to stop)")
    try:
        await stop.wait()
    except asyncio.CancelledError:  # pragma: no cover - loop teardown
        pass
    finally:
        await server.close()
        if sink is not None:
            sink.close()
            print(f"trace -> {args.trace_out}")
        for key, value in server.stats_view().items():
            print(f"{key}: {value}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    try:
        return asyncio.run(_serve_async(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


async def _load_async(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ClientPool, LoadGenerator

    _partition, workload = _build_workload(
        ro_share=args.ro_share, skew=args.skew, schema=args.workload_schema
    )
    pool = await ClientPool.connect_tcp(
        args.host, args.port, args.connections
    )
    try:
        generator = LoadGenerator(
            pool,
            workload,
            transactions=args.transactions,
            seed=args.seed,
            rate=args.rate,
        )
        report = await generator.run()
    finally:
        await pool.close()
    document = report.to_dict()
    if args.out:
        with open(args.out, "w") as stream:
            json.dump(document, stream, indent=2)
            stream.write("\n")
        print(f"report -> {args.out}")
    print(json.dumps(document, indent=2))
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    import asyncio

    return asyncio.run(_load_async(args))


def cmd_info(args: argparse.Namespace) -> int:
    if args.schema == "inventory":
        partition = build_inventory_partition()
    else:
        partition = chain_partition(args.depth)
    print(PartitionSummary(partition).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HDD concurrency-control experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--commits", type=int, default=400)
        p.add_argument("--clients", type=int, default=8)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--skew", type=float, default=1.0)
        p.add_argument("--ro-share", type=float, default=0.25, dest="ro_share")
        p.add_argument(
            "--schedulers",
            nargs="+",
            choices=sorted(SCHEDULERS),
            default=DEFAULT_COMPARISON,
        )
        p.add_argument(
            "--workload-schema",
            choices=["inventory", "claims"],
            default="inventory",
            dest="workload_schema",
        )

    compare = sub.add_parser("compare", help="measured Figure 10 table")
    common(compare)
    compare.set_defaults(fn=cmd_compare)

    sweep = sub.add_parser("sweep", help="vary one knob, print the series")
    common(sweep)
    sweep.add_argument(
        "--knob",
        required=True,
        choices=["ro_share", "skew", "clients", "depth"],
    )
    sweep.add_argument("--values", nargs="+", required=True)
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for parallel execution (1 = inline)",
    )
    sweep.add_argument(
        "--out", default=None, help="write the merged JSON document here"
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="per-config result cache directory",
    )
    sweep.add_argument(
        "--check-determinism",
        action="store_true",
        dest="check_determinism",
        help="run serial + parallel, fail on any divergence",
    )
    sweep.set_defaults(fn=cmd_sweep)

    anomaly = sub.add_parser(
        "anomaly", help="replay the Figure 3/4 constructions"
    )
    anomaly.add_argument("--figure", type=int, choices=[3, 4], default=3)
    anomaly.set_defaults(fn=cmd_anomaly)

    info = sub.add_parser("info", help="show a schema decomposition")
    info.add_argument(
        "--schema", choices=["inventory", "chain"], default="inventory"
    )
    info.add_argument("--depth", type=int, default=4)
    info.set_defaults(fn=cmd_info)

    trace = sub.add_parser(
        "trace", help="run one scheduler with event tracing on"
    )
    common(trace)
    trace.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULERS),
        default="hdd",
        help="the one scheduler to run traced",
    )
    trace.add_argument(
        "--trace-out",
        default="trace.jsonl",
        dest="trace_out",
        help="JSONL trace output path",
    )
    trace.add_argument(
        "--gc-interval",
        type=int,
        default=None,
        dest="gc_interval",
        help="run the scheduler's GC every N engine steps",
    )
    trace.set_defaults(fn=cmd_trace)

    explain = sub.add_parser(
        "explain", help="reconstruct a JSONL trace offline"
    )
    explain.add_argument("trace", help="trace file written by `repro trace`")
    group = explain.add_mutually_exclusive_group()
    group.add_argument(
        "--txn",
        type=int,
        default=None,
        help="explain one transaction's timeline and waits",
    )
    group.add_argument(
        "--summary",
        action="store_true",
        help="run summary + latency breakdown (the default)",
    )
    explain.set_defaults(fn=cmd_explain)

    dist = sub.add_parser(
        "dist", help="run the distributed segment-controller runtime"
    )
    dist.add_argument("--commits", type=int, default=200)
    dist.add_argument("--clients", type=int, default=8)
    dist.add_argument("--seed", type=int, default=42)
    dist.add_argument("--skew", type=float, default=1.0)
    dist.add_argument("--ro-share", type=float, default=0.25, dest="ro_share")
    dist.add_argument(
        "--workload-schema",
        choices=["inventory", "claims"],
        default="inventory",
        dest="workload_schema",
    )
    dist.add_argument(
        "--scheduler",
        choices=sorted(DIST_SCHEDULERS),
        default="hdd",
        dest="mode",
        help="which concurrency control the nodes run",
    )
    dist.add_argument(
        "--latency", type=int, default=0, help="base one-way link latency"
    )
    dist.add_argument(
        "--jitter", type=int, default=0, help="random extra latency bound"
    )
    dist.add_argument(
        "--drop", type=float, default=0.0, help="per-message drop rate"
    )
    dist.add_argument(
        "--spike-rate",
        type=float,
        default=0.0,
        dest="spike_rate",
        help="probability a message hits a delay spike",
    )
    dist.add_argument(
        "--spike-ticks",
        type=int,
        default=0,
        dest="spike_ticks",
        help="extra delay a spike adds",
    )
    dist.add_argument(
        "--net-seed",
        type=int,
        default=0,
        dest="net_seed",
        help="seed for the simulated network's fault draws",
    )
    dist.add_argument(
        "--partition",
        nargs=3,
        action="append",
        metavar=("START", "END", "SEGMENT"),
        dest="net_partition",
        help="isolate SEGMENT's node from tick START until END",
    )
    dist.add_argument(
        "--crash",
        nargs=3,
        action="append",
        metavar=("SEGMENT", "AT", "RECOVER"),
        help="crash SEGMENT's node at tick AT, restart at RECOVER",
    )
    dist.add_argument(
        "--batch-gossip",
        action="store_true",
        dest="batch_gossip",
        help="coalesce journal gossip into per-link batches and "
        "govern wall polls (same committed schedule, fewer messages)",
    )
    dist.add_argument(
        "--real",
        action="store_true",
        help="run segment controllers in real OS worker processes "
        "(ideal plan only; SimNetwork stays the deterministic twin)",
    )
    dist.add_argument(
        "--procs",
        type=int,
        default=None,
        help="worker process count for --real (default: one per node)",
    )
    dist.add_argument(
        "--check-determinism",
        action="store_true",
        dest="check_determinism",
        help="run twice, fail unless message log + schedule match "
        "(with --real: replay through the SimNetwork twin and compare "
        "schedule, stats, and walls)",
    )
    dist.add_argument(
        "--message-log",
        default=None,
        dest="message_log",
        help="write the canonical message trace to this file",
    )
    dist.add_argument(
        "--trace-out",
        default=None,
        dest="trace_out",
        help="write a causal JSONL event trace to this file",
    )
    dist.set_defaults(fn=cmd_dist)

    explore = sub.add_parser(
        "explore",
        help="search schedules + fault plans for oracle violations",
    )
    explore.add_argument(
        "--replay",
        default=None,
        metavar="ARTIFACT",
        help="re-execute a saved artifact and verify byte-identity",
    )
    explore.add_argument(
        "--target",
        action="append",
        default=None,
        metavar="MUTANT",
        help="restrict the campaign to this corpus mutant (repeatable)",
    )
    explore.add_argument(
        "--corpus",
        action="store_true",
        help="run the full mutation corpus (the default campaign)",
    )
    explore.add_argument(
        "--skip-real",
        action="store_true",
        help="do not run the unmutated real targets",
    )
    explore.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of search base seeds per target",
    )
    explore.add_argument("--episodes", type=int, default=12)
    explore.add_argument("--neighborhood", type=int, default=8)
    explore.add_argument("--fuzz", type=int, default=6)
    explore.add_argument(
        "--rate",
        type=float,
        default=0.25,
        help="per-decision deviation probability in random episodes",
    )
    explore.add_argument("--minimize-tests", type=int, default=250)
    explore.add_argument("--workers", type=int, default=1)
    explore.add_argument(
        "--artifacts",
        default=None,
        help="directory for minimized violation artifacts",
    )
    explore.add_argument(
        "--summary-out",
        default=None,
        help="write the campaign summary JSON here",
    )
    explore.set_defaults(fn=cmd_explore)

    dist_explain = sub.add_parser(
        "dist-explain",
        help="attribute commit latency from a dist JSONL trace",
    )
    dist_explain.add_argument(
        "trace", help="trace file written by `repro dist --trace-out`"
    )
    dist_explain.add_argument(
        "--txn",
        type=int,
        default=None,
        help="explain one committed transaction's critical path",
    )
    dist_explain.set_defaults(fn=cmd_dist_explain)

    serve = sub.add_parser(
        "serve", help="serve one scheduler to framed-protocol clients"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7433)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--skew", type=float, default=1.0)
    serve.add_argument("--ro-share", type=float, default=0.25, dest="ro_share")
    serve.add_argument(
        "--workload-schema",
        choices=["inventory", "claims"],
        default="inventory",
        dest="workload_schema",
    )
    serve.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULERS),
        default="hdd",
        help="which concurrency control to serve",
    )
    serve.add_argument(
        "--gc-every",
        type=int,
        default=None,
        dest="gc_every",
        help="run the scheduler's GC every N server steps",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        dest="trace_out",
        help="write a JSONL event trace (repro explain reads it)",
    )
    serve.set_defaults(fn=cmd_serve)

    load = sub.add_parser(
        "load", help="open-loop load against a running repro serve"
    )
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=7433)
    load.add_argument("--connections", type=int, default=4)
    load.add_argument("--transactions", type=int, default=400)
    load.add_argument("--seed", type=int, default=42)
    load.add_argument("--skew", type=float, default=1.0)
    load.add_argument("--ro-share", type=float, default=0.25, dest="ro_share")
    load.add_argument(
        "--workload-schema",
        choices=["inventory", "claims"],
        default="inventory",
        dest="workload_schema",
    )
    load.add_argument(
        "--rate",
        type=float,
        default=None,
        help="arrivals per second (omit for saturating arrivals)",
    )
    load.add_argument(
        "--out", default=None, help="write the JSON load report here"
    )
    load.set_defaults(fn=cmd_load)

    report = sub.add_parser(
        "report", help="run the headline experiments, emit markdown"
    )
    report.add_argument("-o", "--output", default=None, help="output file")
    report.add_argument(
        "--quick", action="store_true", help="smaller, faster runs"
    )
    report.set_defaults(fn=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ConfigError as exc:
        # Invalid settings (contradictory fault plans, bad knob
        # combinations) are operational errors, never violations.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
