"""Baseline concurrency-control algorithms HDD is compared against."""

from repro.baselines.lock_manager import LockManager, LockMode, LockResult
from repro.baselines.mv2pl import MultiversionTwoPhaseLocking
from repro.baselines.mvto import (
    MultiversionTimestampOrdering,
    ReedMultiversionTimestampOrdering,
)
from repro.baselines.sdd1 import SDD1Pipelining
from repro.baselines.timestamp_ordering import TimestampOrdering
from repro.baselines.two_phase_locking import TwoPhaseLocking

__all__ = [
    "LockManager",
    "LockMode",
    "LockResult",
    "TwoPhaseLocking",
    "TimestampOrdering",
    "MultiversionTimestampOrdering",
    "ReedMultiversionTimestampOrdering",
    "MultiversionTwoPhaseLocking",
    "SDD1Pipelining",
]
