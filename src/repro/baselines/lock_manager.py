"""Shared/exclusive lock manager with deadlock detection.

Substrate for the two-phase-locking baselines.  Features:

* shared (S) and exclusive (X) modes with the usual compatibility
  matrix and S->X upgrades;
* FIFO wait queues per granule (no starvation);
* deadlock handling in two selectable flavours:

  - ``"detect"`` (default): a waits-for graph maintained incrementally;
    a lock request that would close a cycle is refused with
    ``LockResult.DEADLOCK`` and the *requester* dies (deterministic
    victim policy);
  - ``"wound-wait"`` (Rosenkrantz 78): deadlock *prevention* by
    timestamp — an older requester wounds (kills) younger conflicting
    holders instead of waiting for them; a younger requester waits.
    No cycle detection needed, waits always point young -> old.

* idempotent requests: re-asking for a lock you hold or already queued
  for is harmless, so drivers can blindly retry blocked operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.txn.transaction import GranuleId

__all__ = ["LockManager", "LockMode", "LockResult"]


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockResult(enum.Enum):
    GRANTED = "granted"
    BLOCKED = "blocked"
    DEADLOCK = "deadlock"


@dataclass
class _LockState:
    """Holders and waiters of one granule's lock."""

    holders: dict[int, LockMode]
    queue: list[tuple[int, LockMode]]

    def holder_mode(self) -> Optional[LockMode]:
        if any(m is LockMode.EXCLUSIVE for m in self.holders.values()):
            return LockMode.EXCLUSIVE
        if self.holders:
            return LockMode.SHARED
        return None


def _compatible(requested: LockMode, held: LockMode) -> bool:
    return requested is LockMode.SHARED and held is LockMode.SHARED


class LockManager:
    """Granule-level S/X locking with FIFO queues and cycle detection."""

    def __init__(self, policy: str = "detect") -> None:
        if policy not in ("detect", "wound-wait"):
            raise ValueError(f"unknown deadlock policy {policy!r}")
        self.policy = policy
        self._locks: dict[GranuleId, _LockState] = {}
        #: txn -> set of granules held (for release_all).
        self._held: dict[int, set[GranuleId]] = {}
        #: txn -> granule it waits on (each txn waits on one op at a time).
        self._waiting_on: dict[int, GranuleId] = {}
        #: txn -> timestamp (wound-wait only).
        self._timestamps: dict[int, int] = {}
        #: victims selected by the last wound-wait conflict; the caller
        #: must abort them (which releases their locks).
        self._wounded: set[int] = set()

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def acquire(
        self,
        txn_id: int,
        granule: GranuleId,
        mode: LockMode,
        ts: Optional[int] = None,
    ) -> LockResult:
        """Request a lock.  ``ts`` (the transaction's timestamp) is
        required under the wound-wait policy and ignored otherwise."""
        state = self._locks.setdefault(
            granule, _LockState(holders={}, queue=[])
        )
        if ts is not None:
            self._timestamps[txn_id] = ts
        held = state.holders.get(txn_id)
        if held is not None and (
            held is LockMode.EXCLUSIVE or held is mode
        ):
            self._unqueue(state, txn_id)
            return LockResult.GRANTED

        if self._grantable(state, txn_id, mode):
            state.holders[txn_id] = mode
            self._held.setdefault(txn_id, set()).add(granule)
            self._unqueue(state, txn_id)
            self._waiting_on.pop(txn_id, None)
            return LockResult.GRANTED

        # Queue (idempotently), then resolve per policy.
        if not any(t == txn_id for t, _ in state.queue):
            state.queue.append((txn_id, mode))
        self._waiting_on[txn_id] = granule
        if self.policy == "wound-wait":
            self._wound(state, txn_id, mode)
            return LockResult.BLOCKED
        if self._would_deadlock(txn_id):
            self._unqueue(state, txn_id)
            self._waiting_on.pop(txn_id, None)
            return LockResult.DEADLOCK
        return LockResult.BLOCKED

    def _wound(self, state: _LockState, txn_id: int, mode: LockMode) -> None:
        """Wound-wait: an older requester kills every younger
        transaction it would otherwise wait for — conflicting holders
        *and* conflicting requests queued ahead (FIFO fairness can make
        a request wait behind a queued incompatible one, and a deadlock
        cycle can run through that queue edge).  Surviving blockers are
        all older, so waits point strictly young -> old."""
        my_ts = self._timestamps.get(txn_id)
        if my_ts is None:
            raise ValueError("wound-wait requires a timestamp on acquire")
        for blocker in self._blockers_of(txn_id):
            blocker_ts = self._timestamps.get(blocker)
            if blocker_ts is not None and my_ts < blocker_ts:
                self._wounded.add(blocker)

    def take_wounded(self) -> set[int]:
        """Victims of the last conflicts; the caller must abort them."""
        victims, self._wounded = self._wounded, set()
        return victims

    def _grantable(
        self, state: _LockState, txn_id: int, mode: LockMode
    ) -> bool:
        others = {t: m for t, m in state.holders.items() if t != txn_id}
        if others and (
            mode is LockMode.EXCLUSIVE
            or any(m is LockMode.EXCLUSIVE for m in others.values())
        ):
            return False
        # FIFO fairness: an S request must not overtake a queued X
        # request (unless the requester already queued earlier itself,
        # in which case _pump will get to it in order).
        for queued_txn, queued_mode in state.queue:
            if queued_txn == txn_id:
                break
            if not _compatible(mode, queued_mode) or not _compatible(
                queued_mode, mode
            ):
                return False
        return True

    @staticmethod
    def _unqueue(state: _LockState, txn_id: int) -> None:
        state.queue = [(t, m) for t, m in state.queue if t != txn_id]

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release_all(self, txn_id: int) -> set[int]:
        """Drop every lock of ``txn_id``; return txns that got granted."""
        woken: set[int] = set()
        for granule in self._held.pop(txn_id, set()):
            state = self._locks[granule]
            state.holders.pop(txn_id, None)
            woken |= self._pump(granule, state)
        # The txn may also have been waiting somewhere (abort path).
        waited = self._waiting_on.pop(txn_id, None)
        if waited is not None:
            state = self._locks[waited]
            self._unqueue(state, txn_id)
            woken |= self._pump(waited, state)
        self._timestamps.pop(txn_id, None)
        self._wounded.discard(txn_id)
        woken.discard(txn_id)
        return woken

    def _pump(self, granule: GranuleId, state: _LockState) -> set[int]:
        """Grant queued requests in FIFO order while compatible."""
        woken: set[int] = set()
        while state.queue:
            txn_id, mode = state.queue[0]
            others = {t: m for t, m in state.holders.items() if t != txn_id}
            upgrade_ok = not others or (
                mode is LockMode.SHARED
                and all(m is LockMode.SHARED for m in others.values())
            )
            if not upgrade_ok:
                break
            state.queue.pop(0)
            state.holders[txn_id] = mode
            self._held.setdefault(txn_id, set()).add(granule)
            self._waiting_on.pop(txn_id, None)
            woken.add(txn_id)
        return woken

    # ------------------------------------------------------------------
    # Deadlock detection
    # ------------------------------------------------------------------
    def _blockers_of(self, txn_id: int) -> set[int]:
        granule = self._waiting_on.get(txn_id)
        if granule is None:
            return set()
        state = self._locks[granule]
        blockers = {t for t in state.holders if t != txn_id}
        my_mode = next(
            (m for t, m in state.queue if t == txn_id), LockMode.EXCLUSIVE
        )
        for queued_txn, queued_mode in state.queue:
            if queued_txn == txn_id:
                break
            if not _compatible(my_mode, queued_mode) or not _compatible(
                queued_mode, my_mode
            ):
                blockers.add(queued_txn)
        return blockers

    def _would_deadlock(self, requester: int) -> bool:
        """DFS over the waits-for graph starting from the requester."""
        seen: set[int] = set()
        frontier = list(self._blockers_of(requester))
        while frontier:
            txn = frontier.pop()
            if txn == requester:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            frontier.extend(self._blockers_of(txn))
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holders(self, granule: GranuleId) -> dict[int, LockMode]:
        state = self._locks.get(granule)
        return dict(state.holders) if state else {}

    def waiting(self, granule: GranuleId) -> list[int]:
        state = self._locks.get(granule)
        return [t for t, _ in state.queue] if state else []

    def locks_held_by(self, txn_id: int) -> set[GranuleId]:
        return set(self._held.get(txn_id, set()))
