"""Basic timestamp ordering (Bernstein 80) as a standalone baseline.

The whole database is treated as one segment and the
:class:`~repro.core.intraclass.BasicTOEngine` rules are applied to every
access: reads and writes are validated against the head version's write
and read timestamps, readers of uncommitted data wait for the (always
older) writer, and every granted read leaves a read timestamp — the
overhead column Figure 10 charges to timestamp ordering.

``register_reads=False`` is the deliberately unsafe mode of Figure 4:
reads leave no timestamp, so a conflicting later write slips through and
the oracle catches a non-serializable execution.
"""

from __future__ import annotations

from typing import Optional

from repro.core.intraclass import BasicTOEngine, IntraClassEngine
from repro.scheduling import BaseScheduler, Outcome, granted
from repro.storage.store import MultiVersionStore
from repro.storage.version import Version
from repro.txn.clock import LogicalClock
from repro.txn.transaction import GranuleId, Transaction


class _UnregisteredReadMixin(IntraClassEngine):
    """Engine variant that serves reads without leaving a timestamp."""

    def _grant_read(self, txn: Transaction, version: Version) -> Outcome:
        self._stats.reads += 1
        self._stats.unregistered_reads += 1
        txn.record_read(version.granule)
        self._schedule.record_read(txn.txn_id, version.granule, version.ts)
        return granted(value=version.value, version_ts=version.ts)


class _UnsafeTOEngine(_UnregisteredReadMixin, BasicTOEngine):
    name = "to-unsafe"


class TimestampOrdering(BaseScheduler):
    """Single-version-rule timestamp ordering over the whole database."""

    name = "to"
    engine_cls: type[IntraClassEngine] = BasicTOEngine
    unsafe_engine_cls: type[IntraClassEngine] = _UnsafeTOEngine

    def __init__(
        self,
        store: Optional[MultiVersionStore] = None,
        clock: Optional[LogicalClock] = None,
        register_reads: bool = True,
    ) -> None:
        super().__init__(store=store, clock=clock)
        chosen = self.engine_cls if register_reads else self.unsafe_engine_cls
        self.engine = chosen(self.store, self.schedule, self.stats)
        self.register_reads = register_reads

    def _do_read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        self._require_active(txn)
        outcome = self.engine.read(txn, granule)
        if outcome.aborted:
            self._abort_internal(txn, outcome.reason or "TO rejection")
        return outcome

    def _do_write(
        self, txn: Transaction, granule: GranuleId, value: object
    ) -> Outcome:
        self._require_active(txn)
        outcome = self.engine.write(txn, granule, value)
        if outcome.aborted:
            self._abort_internal(txn, outcome.reason or "TO rejection")
        return outcome

    def _do_commit(self, txn: Transaction) -> Outcome:
        self._require_active(txn)
        veto = self.engine.commit_check(txn)
        if veto is not None:
            if veto.aborted:
                self._abort_internal(txn, veto.reason or "commit rejection")
            return veto
        commit_ts = self._finish_commit(txn)
        for granule in txn.write_set:
            self.store.chain(granule).commit_version(
                txn.initiation_ts, commit_ts
            )
        self.engine.forget(txn.txn_id)
        return granted(version_ts=commit_ts)

    def abort(self, txn: Transaction, reason: str) -> None:
        self._require_active(txn)
        self._abort_internal(txn, reason)

    def _abort_internal(self, txn: Transaction, reason: str) -> None:
        for granule in txn.write_set:
            chain = self.store.chain(granule)
            if chain.has_version(txn.initiation_ts):
                chain.remove(txn.initiation_ts)
        self._finish_abort(txn, reason)
        self.engine.forget(txn.txn_id)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def safe_watermark(self) -> int:
        """Versions strictly below the base under this watermark are
        unreachable: every active or future reader has an initiation
        timestamp at or above it."""
        active = [t.initiation_ts for t in self.active_transactions()]
        return min(active) if active else self.clock.now

    def collect_garbage(self):
        """Prune versions no present or future reader can be served."""
        from repro.storage.gc import WatermarkGC

        collector = WatermarkGC(self.store, lambda granule: "*")
        report = collector.collect({"*": self.safe_watermark()})
        if self._sink is not None:
            from repro.obs.events import GCPassEvent

            self._sink.emit(
                GCPassEvent(
                    step=self.current_step,
                    ts=self.clock.now,
                    pruned_versions=report.pruned_versions,
                    walls_retired=0,
                )
            )
        return report
