"""Strict two-phase locking — the classical baseline (Eswaran/Gray).

Reads take shared locks (a *read registration* in the paper's cost
model), writes take exclusive locks; everything is held to commit or
abort (strictness), so nobody ever observes uncommitted data.  Deadlock
victims are the requesting transactions.

Write versions are stamped with a fresh clock tick at write time — under
exclusive locks that tick order *is* the version order, so the recorded
schedule feeds the oracle directly.

``read_locks=False`` switches on the deliberately unsafe mode used to
reproduce Figure 3: reads skip the shared lock (and thus the
registration), which is exactly the shortcut whose unsoundness
motivates the paper.  The anomaly tests prove the oracle catches the
resulting non-serializable executions.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.lock_manager import LockManager, LockMode, LockResult
from repro.scheduling import (
    BaseScheduler,
    Outcome,
    aborted,
    blocked,
    granted,
)
from repro.storage.version import Version
from repro.storage.store import MultiVersionStore
from repro.txn.clock import LogicalClock, Timestamp
from repro.txn.transaction import GranuleId, Transaction


class TwoPhaseLocking(BaseScheduler):
    """Strict 2PL over the shared multi-version store."""

    name = "2pl"

    def __init__(
        self,
        store: Optional[MultiVersionStore] = None,
        clock: Optional[LogicalClock] = None,
        read_locks: bool = True,
        deadlock_policy: str = "detect",
    ) -> None:
        super().__init__(store=store, clock=clock)
        self.locks = LockManager(policy=deadlock_policy)
        self.read_locks = read_locks
        #: (txn, granule) -> write-time version timestamp.
        self._write_ts: dict[tuple[int, GranuleId], Timestamp] = {}
        #: Transactions woken by the last release (drivers may consult).
        self.last_woken: set[int] = set()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _do_read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        self._require_active(txn)
        if granule in txn.workspace:
            return self._grant_read_own(txn, granule)
        if self.read_locks:
            result = self.locks.acquire(
                txn.txn_id, granule, LockMode.SHARED, ts=txn.initiation_ts
            )
            if result is LockResult.BLOCKED:
                self._abort_wounded()
                self.stats.read_blocks += 1
                return blocked(waiting_for=f"lock:{granule}")
            if result is LockResult.DEADLOCK:
                self._abort_internal(txn, "deadlock victim (read)")
                self.stats.deadlock_aborts += 1
                return aborted("deadlock victim (read)")
            self.stats.read_registrations += 1
        else:
            self.stats.unregistered_reads += 1
        version = self.store.chain(granule).latest_committed()
        txn.record_read(granule)
        self.stats.reads += 1
        self.schedule.record_read(txn.txn_id, granule, version.ts)
        return granted(value=version.value, version_ts=version.ts)

    def _grant_read_own(self, txn: Transaction, granule: GranuleId) -> Outcome:
        version_ts = self._write_ts[(txn.txn_id, granule)]
        txn.record_read(granule)
        self.stats.reads += 1
        self.schedule.record_read(txn.txn_id, granule, version_ts)
        return granted(value=txn.workspace[granule], version_ts=version_ts)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _do_write(
        self, txn: Transaction, granule: GranuleId, value: object
    ) -> Outcome:
        self._require_active(txn)
        result = self.locks.acquire(
            txn.txn_id, granule, LockMode.EXCLUSIVE, ts=txn.initiation_ts
        )
        if result is LockResult.BLOCKED:
            self._abort_wounded()
            self.stats.write_blocks += 1
            return blocked(waiting_for=f"lock:{granule}")
        if result is LockResult.DEADLOCK:
            self._abort_internal(txn, "deadlock victim (write)")
            self.stats.deadlock_aborts += 1
            return aborted("deadlock victim (write)")
        chain = self.store.chain(granule)
        key = (txn.txn_id, granule)
        if key in self._write_ts:
            chain.version_at(self._write_ts[key]).value = value
            version_ts = self._write_ts[key]
        else:
            version_ts = self.clock.tick()
            chain.install(
                Version(granule, version_ts, value, writer_id=txn.txn_id)
            )
            self._write_ts[key] = version_ts
        txn.record_write(granule, value)
        self.stats.writes += 1
        self.schedule.record_write(txn.txn_id, granule, version_ts)
        return granted(version_ts=version_ts)

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------
    def _do_commit(self, txn: Transaction) -> Outcome:
        self._require_active(txn)
        commit_ts = self._finish_commit(txn)
        for granule in txn.write_set:
            version_ts = self._write_ts.pop((txn.txn_id, granule))
            self.store.chain(granule).commit_version(version_ts, commit_ts)
        self.last_woken = self.locks.release_all(txn.txn_id)
        return granted(version_ts=commit_ts)

    def abort(self, txn: Transaction, reason: str) -> None:
        self._require_active(txn)
        self._abort_internal(txn, reason)

    def _abort_internal(self, txn: Transaction, reason: str) -> None:
        for granule in txn.write_set:
            version_ts = self._write_ts.pop((txn.txn_id, granule), None)
            if version_ts is not None:
                self.store.chain(granule).remove(version_ts)
        self._finish_abort(txn, reason)
        self.last_woken = self.locks.release_all(txn.txn_id)

    def _abort_wounded(self) -> None:
        """Wound-wait policy: kill the victims the lock manager chose."""
        for victim_id in self.locks.take_wounded():
            victim = self.transactions.get(victim_id)
            if victim is not None and victim.is_active:
                self.stats.deadlock_aborts += 1
                self._abort_internal(victim, "wounded by older transaction")
