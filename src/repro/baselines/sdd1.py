"""SDD-1-style conflict-class pipelining (single-site reproduction).

The second column of Figure 10.  SDD-1 (Bernstein 80) performs *conflict
analysis* over pre-declared transaction classes and synchronises only
where classes conflict; within a class transactions are pipelined
(serialized).  We reproduce the synchronization *policy* on one site:

* transactions must name a declared profile; two classes **conflict**
  when one's write segments intersect the other's access segments (or
  vice versa);
* **intra-class pipelining**: a transaction may not operate while an
  older transaction of its own class is active;
* **inter-class conservative timestamp ordering**: an access to a
  granule blocks while any *older* transaction of a conflicting class
  (one that writes the granule's segment, or accesses it when we write
  it) is still active.  Once the wait clears, every version below the
  reader's timestamp is final, so reads need **no read timestamps** —
  the cost shows up as blocking instead, which is exactly the trade-off
  Figure 10 charges to SDD-1 ("may cause read requests to be rejected
  or blocked").
* **read-only transactions get no special handling**: they need a
  declared (read-only) profile and pipeline like everyone else.

Waits always point from younger to older transactions, so the scheme is
deadlock-free.  Version timestamps are initiation timestamps; the wait
rules guarantee installs happen in timestamp order per granule.
"""

from __future__ import annotations

from typing import Optional

from repro.core.partition import HierarchicalPartition, TransactionProfile
from repro.errors import ProtocolViolation
from repro.scheduling import (
    BaseScheduler,
    Outcome,
    blocked,
    granted,
)
from repro.storage.store import MultiVersionStore
from repro.storage.version import Version
from repro.txn.clock import LogicalClock, Timestamp
from repro.txn.transaction import (
    GranuleId,
    SegmentId,
    Transaction,
    TransactionKind,
)


class SDD1Pipelining(BaseScheduler):
    """Conflict-graph analysis + class pipelining over declared profiles.

    Uses the same :class:`HierarchicalPartition` declaration as HDD so
    comparisons run the identical workload, but never relies on the TST
    property — only on the declared read/write segment sets.
    """

    name = "sdd1"

    def __init__(
        self,
        partition: HierarchicalPartition,
        store: Optional[MultiVersionStore] = None,
        clock: Optional[LogicalClock] = None,
    ) -> None:
        super().__init__(store=store, clock=clock)
        self.partition = partition
        #: profile name -> active transactions of that class, by I(t).
        self._active_by_profile: dict[str, dict[int, Timestamp]] = {
            name: {} for name in partition.profiles
        }
        self._profile_of_txn: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _make_transaction(self, txn_id, initiation_ts, kind, profile):
        if profile is None:
            raise ProtocolViolation(
                "SDD-1 requires every transaction to declare its class "
                "(no special handling for ad-hoc read-only transactions)"
            )
        declared = self.partition.profile(profile)
        if declared.is_read_only != (kind is TransactionKind.READ_ONLY):
            raise ProtocolViolation(
                f"profile {profile!r} read-only flag does not match the "
                "begin() call"
            )
        self._active_by_profile[profile][txn_id] = initiation_ts
        self._profile_of_txn[txn_id] = profile
        class_id = None if declared.is_read_only else declared.root_segment
        return Transaction(txn_id, initiation_ts, kind, class_id=class_id)

    # ------------------------------------------------------------------
    # Conflict machinery
    # ------------------------------------------------------------------
    def _conflicts_on(
        self, my_profile: TransactionProfile, segment: SegmentId, writing: bool
    ) -> list[str]:
        """Profiles whose active transactions must drain before an access.

        The own class is always included (pipelining).  Another class
        conflicts on this access iff it writes the segment, or it
        accesses the segment and we are writing it.
        """
        result = []
        for name, other in self.partition.profiles.items():
            if name == my_profile.name:
                result.append(name)
            elif segment in other.writes:
                result.append(name)
            elif writing and segment in other.accesses:
                result.append(name)
        return result

    def _oldest_conflicting(
        self, txn: Transaction, profiles: list[str]
    ) -> Optional[int]:
        """An active transaction older than ``txn`` in the given classes."""
        for name in profiles:
            for other_id, other_ts in self._active_by_profile[name].items():
                if other_id != txn.txn_id and other_ts < txn.initiation_ts:
                    return other_id
        return None

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _do_read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        self._require_active(txn)
        profile = self.partition.profile(self._profile_of_txn[txn.txn_id])
        segment = self.partition.segment_of(granule)
        if segment not in profile.accesses:
            raise ProtocolViolation(
                f"profile {profile.name!r} does not declare access to "
                f"segment {segment!r}"
            )
        blocker = self._oldest_conflicting(
            txn, self._conflicts_on(profile, segment, writing=False)
        )
        if blocker is not None:
            self.stats.read_blocks += 1
            return blocked(waiting_for=blocker)
        if granule in txn.workspace:
            version_ts: Timestamp = txn.initiation_ts
            value = txn.workspace[granule]
        else:
            version = self.store.chain(granule).latest_before(
                txn.initiation_ts, committed_only=True
            )
            assert version is not None  # bootstrap guarantees one
            version_ts = version.ts
            value = version.value
        txn.record_read(granule)
        self.stats.reads += 1
        self.stats.unregistered_reads += 1
        self.schedule.record_read(txn.txn_id, granule, version_ts)
        return granted(value=value, version_ts=version_ts)

    def _do_write(
        self, txn: Transaction, granule: GranuleId, value: object
    ) -> Outcome:
        self._require_active(txn)
        if txn.is_read_only:
            raise ProtocolViolation(
                f"read-only txn {txn.txn_id} attempted a write"
            )
        profile = self.partition.profile(self._profile_of_txn[txn.txn_id])
        segment = self.partition.segment_of(granule)
        if segment not in profile.writes:
            raise ProtocolViolation(
                f"profile {profile.name!r} does not declare writes to "
                f"segment {segment!r}"
            )
        blocker = self._oldest_conflicting(
            txn, self._conflicts_on(profile, segment, writing=True)
        )
        if blocker is not None:
            self.stats.write_blocks += 1
            return blocked(waiting_for=blocker)
        chain = self.store.chain(granule)
        if granule in txn.workspace:
            chain.version_at(txn.initiation_ts).value = value
        else:
            chain.install(
                Version(granule, txn.initiation_ts, value, writer_id=txn.txn_id)
            )
        txn.record_write(granule, value)
        self.stats.writes += 1
        self.schedule.record_write(txn.txn_id, granule, txn.initiation_ts)
        return granted(version_ts=txn.initiation_ts)

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------
    def _do_commit(self, txn: Transaction) -> Outcome:
        self._require_active(txn)
        commit_ts = self._finish_commit(txn)
        for granule in txn.write_set:
            self.store.chain(granule).commit_version(
                txn.initiation_ts, commit_ts
            )
        self._drop_active(txn)
        return granted(version_ts=commit_ts)

    def abort(self, txn: Transaction, reason: str) -> None:
        self._require_active(txn)
        for granule in txn.write_set:
            chain = self.store.chain(granule)
            if chain.has_version(txn.initiation_ts):
                chain.remove(txn.initiation_ts)
        self._finish_abort(txn, reason)
        self._drop_active(txn)

    def _drop_active(self, txn: Transaction) -> None:
        profile = self._profile_of_txn.pop(txn.txn_id, None)
        if profile is not None:
            self._active_by_profile[profile].pop(txn.txn_id, None)
