"""Reed-style multi-version timestamp ordering as a standalone baseline.

Identical driver shell to :class:`~repro.baselines.timestamp_ordering.
TimestampOrdering` but with the :class:`~repro.core.intraclass.
MVTOEngine` rules: reads are never rejected (they fall back to older
versions), only writes that would invalidate an already-registered read
abort.  Reads still register timestamps — this is the baseline whose
registration overhead HDD's Protocol A removes for cross-segment
accesses.
"""

from __future__ import annotations

from repro.baselines.timestamp_ordering import (
    TimestampOrdering,
    _UnregisteredReadMixin,
)
from repro.core.intraclass import MVTOEngine, ReedMVTOEngine


class _UnsafeMVTOEngine(_UnregisteredReadMixin, MVTOEngine):
    name = "mvto-unsafe"


class MultiversionTimestampOrdering(TimestampOrdering):
    """Multi-version timestamp ordering over the whole database."""

    name = "mvto"
    engine_cls = MVTOEngine
    unsafe_engine_cls = _UnsafeMVTOEngine


class ReedMultiversionTimestampOrdering(TimestampOrdering):
    """Reed's original MVTO: dirty reads + commit dependencies.

    Reads never block; commits wait for (always older) depended-upon
    writers, and aborts cascade lazily at commit time.  See
    :class:`~repro.core.intraclass.ReedMVTOEngine` for the rules.
    """

    name = "mvto-reed"
    engine_cls = ReedMVTOEngine
    unsafe_engine_cls = _UnsafeMVTOEngine  # unsafe mode reuses plain MVTO
