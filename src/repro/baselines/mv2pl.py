"""Multi-version two-phase locking (MV2PL, Chan 82 style).

The third column of the paper's Figure 10.  Update transactions run
plain strict 2PL; *read-only* transactions are the special case: they
take no locks at all and read the newest version **committed before
their initiation** — a consistent snapshot by commit time, so they are
never blocked and never rejected, at the price of staleness.

This is exactly the behaviour Figure 10 attributes to MV2PL
("read-only transactions: never block or reject"; intra-class
synchronisation: two-phase locking; no transaction analysis).
"""

from __future__ import annotations

from repro.baselines.two_phase_locking import TwoPhaseLocking
from repro.errors import ProtocolViolation
from repro.scheduling import Outcome, granted
from repro.txn.transaction import GranuleId, Transaction


class MultiversionTwoPhaseLocking(TwoPhaseLocking):
    """Strict 2PL for updates, lock-free snapshots for read-only txns."""

    name = "mv2pl"

    def _do_read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        if not txn.is_read_only:
            return super()._do_read(txn, granule)
        self._require_active(txn)
        version = self.store.chain(granule).latest_committed_before_commit_ts(
            txn.initiation_ts
        )
        if version is None:
            # Bootstrap commits at ts 0 < any initiation, so this can
            # only mean the granule was created mid-run; serve bootstrap.
            version = self.store.chain(granule).latest_before(
                1, committed_only=True
            )
            assert version is not None
        txn.record_read(granule)
        self.stats.reads += 1
        self.stats.unregistered_reads += 1
        self.schedule.record_read(txn.txn_id, granule, version.ts)
        return granted(value=version.value, version_ts=version.ts)

    def _do_write(self, txn: Transaction, granule: GranuleId, value: object):
        if txn.is_read_only:
            raise ProtocolViolation(
                f"read-only txn {txn.txn_id} attempted a write"
            )
        return super()._do_write(txn, granule, value)
