"""Stream trace events to disk as JSON lines, and load them back.

One event per line, ``{"kind": ..., "step": ..., "ts": ..., ...}``.
The format is append-only and self-describing, so a trace written by
``repro trace`` can be explained offline by ``repro explain`` (or any
jq pipeline) without the code that produced it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator, Optional, Union

from repro.obs.events import Event, EventSink, event_from_record


class JsonlTraceSink(EventSink):
    """Write each event as one JSON line to ``path`` (or a stream).

    The file handle is opened eagerly so configuration errors surface
    at construction, and buffered by the underlying ``io`` machinery —
    ``flush()``/``close()`` make the trace durable.  Usable as a
    context manager.
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        stream: Optional[IO[str]] = None,
    ) -> None:
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path or stream")
        self.path = Path(path) if path is not None else None
        self._stream = stream if stream is not None else open(self.path, "w")
        self._owns_stream = stream is None
        self.events_written = 0

    def emit(self, event: Event) -> None:
        self._stream.write(json.dumps(event.to_record()))
        self._stream.write("\n")
        self.events_written += 1

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()
        elif not self._owns_stream:
            self._stream.flush()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_trace(path: Union[str, Path]) -> Iterator[Event]:
    """Yield events from a JSONL trace file, in file order."""
    with open(path) as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield event_from_record(json.loads(line))


def load_trace(path: Union[str, Path]) -> list[Event]:
    """Load a whole JSONL trace file into memory."""
    return list(iter_trace(path))
