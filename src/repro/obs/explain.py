"""Answer "why was this transaction waiting?" from a trace.

The :class:`TraceExplainer` consumes an event stream (a
:class:`~repro.obs.events.MemorySink`'s list, or a JSONL trace loaded
with :func:`~repro.obs.jsonl.load_trace`) and reconstructs:

* per-transaction **timelines** — every event of a transaction plus its
  *blocked episodes* (a :class:`~repro.obs.events.BlockedEvent` paired
  with the same transaction's next event, whose step difference is
  exactly what the simulator bills to ``blocked_client_steps``);
* **wait chains** — a Protocol C wait names the wall the reader ended
  up pinning, and the wall's release record names the unsettled class
  and oldest open transaction that held the wall back ("T17 blocked
  212 steps on wall w9, which waited on I_old of class D2 held by
  T11"); a lock wait names the conflicting holder derived from the
  access history;
* a **summary** whose commit / restart / blocked-step totals are
  derived purely from events and cross-checked against the simulator's
  authoritative :class:`~repro.obs.events.RunEndEvent`;
* a **latency breakdown** — engine steps split into runnable,
  blocked-on-lock, blocked-on-wall, blocked-on-txn, and restarted
  (work thrown away by aborted incarnations).

Caveat: schedulers that kill transactions *externally* (2PL
wound-wait) abort a victim between the victim's own events, so a
wounded client's tail wait has no closing event and the derived
blocked-step total undercounts.  HDD never kills externally — every
abort is an outcome returned to the acting client — so its derived
totals are exact, which is what the acceptance test pins.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.obs.events import (
    AbortedEvent,
    BeginEvent,
    BlockedEvent,
    CommittedEvent,
    Event,
    GCPassEvent,
    ReadEvent,
    RunEndEvent,
    WallPinnedEvent,
    WallReleasedEvent,
    WallRetiredEvent,
    WriteEvent,
)
from repro.obs.metrics import abort_kind, wait_category


@dataclass
class BlockedEpisode:
    """One contiguous wait: a blocked request until the next event."""

    txn_id: int
    op: str
    granule: Optional[str]
    wait_target: Union[int, str, None]
    category: str
    start_step: Optional[int]
    end_step: Optional[int] = None
    #: What ended the wait: ``granted`` / ``aborted`` / ``blocked``
    #: (the retry blocked again) / ``run-end`` (never resolved).
    resolution: str = "run-end"

    @property
    def duration(self) -> int:
        if self.start_step is None or self.end_step is None:
            return 0
        return self.end_step - self.start_step


@dataclass
class TxnTimeline:
    """Everything the trace says about one transaction incarnation."""

    txn_id: int
    txn_class: Optional[str] = None
    read_only: bool = False
    profile: Optional[str] = None
    begin_step: Optional[int] = None
    begin_ts: Optional[int] = None
    end_step: Optional[int] = None
    outcome: str = "open"  # committed / aborted / open
    abort_reason: Optional[str] = None
    reads: int = 0
    writes: int = 0
    protocols: Counter = field(default_factory=Counter)
    events: list[Event] = field(default_factory=list)
    episodes: list[BlockedEpisode] = field(default_factory=list)

    @property
    def blocked_steps(self) -> int:
        return sum(e.duration for e in self.episodes)

    @property
    def lifetime_steps(self) -> int:
        if self.begin_step is None or self.end_step is None:
            return 0
        return self.end_step - self.begin_step


class TraceExplainer:
    """Reconstruct timelines, wait chains and totals from a trace."""

    def __init__(self, events: Iterable[Event]) -> None:
        self.events: list[Event] = list(events)
        self.timelines: dict[int, TxnTimeline] = {}
        self.walls: dict[int, WallReleasedEvent] = {}
        #: txn id -> wall ids it pinned, in pin order (Protocol C).
        self.pins: dict[int, list[int]] = {}
        self.walls_retired = 0
        self.gc_passes = 0
        self.gc_pruned_versions = 0
        self.run_end: Optional[RunEndEvent] = None
        #: granule -> [(step, txn_id, op)] for lock-holder derivation.
        self._accesses: dict[str, list[tuple[Optional[int], int, str]]] = {}
        self._last_step: Optional[int] = None
        self._build()

    @classmethod
    def from_file(cls, path) -> "TraceExplainer":
        from repro.obs.jsonl import iter_trace

        return cls(iter_trace(path))

    # ------------------------------------------------------------------
    # Trace ingestion
    # ------------------------------------------------------------------
    def _timeline(self, txn_id: int) -> TxnTimeline:
        timeline = self.timelines.get(txn_id)
        if timeline is None:
            timeline = self.timelines[txn_id] = TxnTimeline(txn_id)
        return timeline

    def _build(self) -> None:
        open_episode: dict[int, BlockedEpisode] = {}
        for event in self.events:
            if event.step is not None:
                self._last_step = event.step
            txn_id = getattr(event, "txn_id", None)
            if txn_id is not None and not isinstance(
                event, (WallPinnedEvent,)
            ):
                timeline = self._timeline(txn_id)
                timeline.events.append(event)
                episode = open_episode.pop(txn_id, None)
                if episode is not None:
                    episode.end_step = event.step
                    if isinstance(event, BlockedEvent):
                        episode.resolution = "blocked"
                    elif isinstance(event, AbortedEvent):
                        episode.resolution = "aborted"
                    else:
                        episode.resolution = "granted"
            if isinstance(event, BeginEvent):
                timeline = self._timeline(event.txn_id)
                timeline.txn_class = event.txn_class
                timeline.read_only = event.read_only
                timeline.profile = event.profile
                timeline.begin_step = event.step
                timeline.begin_ts = event.ts
            elif isinstance(event, ReadEvent):
                timeline = self._timeline(event.txn_id)
                timeline.reads += 1
                timeline.protocols[event.protocol or "none"] += 1
                if event.granule is not None:
                    self._accesses.setdefault(event.granule, []).append(
                        (event.step, event.txn_id, "r")
                    )
            elif isinstance(event, WriteEvent):
                timeline = self._timeline(event.txn_id)
                timeline.writes += 1
                if event.granule is not None:
                    self._accesses.setdefault(event.granule, []).append(
                        (event.step, event.txn_id, "w")
                    )
            elif isinstance(event, BlockedEvent):
                episode = BlockedEpisode(
                    txn_id=event.txn_id,
                    op=event.op,
                    granule=event.granule,
                    wait_target=event.wait_target,
                    category=wait_category(event.wait_target),
                    start_step=event.step,
                )
                self._timeline(event.txn_id).episodes.append(episode)
                open_episode[event.txn_id] = episode
            elif isinstance(event, CommittedEvent):
                timeline = self._timeline(event.txn_id)
                timeline.outcome = "committed"
                timeline.end_step = event.step
            elif isinstance(event, AbortedEvent):
                timeline = self._timeline(event.txn_id)
                timeline.outcome = "aborted"
                timeline.abort_reason = event.reason
                timeline.end_step = event.step
            elif isinstance(event, WallReleasedEvent):
                self.walls[event.wall_id] = event
            elif isinstance(event, WallPinnedEvent):
                if event.txn_id is not None:
                    self.pins.setdefault(event.txn_id, []).append(
                        event.wall_id
                    )
            elif isinstance(event, WallRetiredEvent):
                self.walls_retired += event.count
            elif isinstance(event, GCPassEvent):
                self.gc_passes += 1
                self.gc_pruned_versions += event.pruned_versions
            elif isinstance(event, RunEndEvent):
                self.run_end = event
        final_step = (
            self.run_end.step if self.run_end is not None else self._last_step
        )
        for episode in open_episode.values():
            episode.end_step = final_step
            episode.resolution = "run-end"
        for timeline in self.timelines.values():
            if timeline.outcome == "open":
                timeline.end_step = final_step

    # ------------------------------------------------------------------
    # Derived totals and the exactness cross-check
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        commits = sum(
            1 for t in self.timelines.values() if t.outcome == "committed"
        )
        restarts = sum(
            1 for t in self.timelines.values() if t.outcome == "aborted"
        )
        blocked_steps = sum(
            t.blocked_steps for t in self.timelines.values()
        )
        blocked_by: Counter = Counter()
        for timeline in self.timelines.values():
            for episode in timeline.episodes:
                blocked_by[episode.category] += episode.duration
        protocols: Counter = Counter()
        for timeline in self.timelines.values():
            protocols.update(timeline.protocols)
        abort_reasons: Counter = Counter()
        for timeline in self.timelines.values():
            if timeline.outcome == "aborted":
                abort_reasons[abort_kind(timeline.abort_reason)] += 1
        summary: dict[str, object] = {
            "transactions": len(self.timelines),
            "commits": commits,
            "restarts": restarts,
            "blocked_client_steps": blocked_steps,
            "blocked_steps_by_target": dict(sorted(blocked_by.items())),
            "reads_by_protocol": dict(sorted(protocols.items())),
            "abort_reasons": dict(sorted(abort_reasons.items())),
            "walls_released": len(self.walls),
            "walls_retired": self.walls_retired,
            "gc_passes": self.gc_passes,
            "gc_pruned_versions": self.gc_pruned_versions,
        }
        if self.run_end is not None:
            summary["reported"] = {
                "steps": self.run_end.steps,
                "commits": self.run_end.commits,
                "restarts": self.run_end.restarts,
                "blocked_client_steps": self.run_end.blocked_client_steps,
            }
            summary["matches_reported"] = (
                commits == self.run_end.commits
                and restarts == self.run_end.restarts
                and blocked_steps == self.run_end.blocked_client_steps
            )
        return summary

    def render_summary(self) -> str:
        summary = self.summary()
        lines = ["trace summary", "-------------"]
        lines.append(f"transactions          {summary['transactions']}")
        lines.append(f"commits               {summary['commits']}")
        lines.append(f"restarts              {summary['restarts']}")
        lines.append(
            f"blocked client steps  {summary['blocked_client_steps']}"
        )
        for name, steps in summary["blocked_steps_by_target"].items():
            lines.append(f"  blocked on {name:<10} {steps}")
        if summary["reads_by_protocol"]:
            reads = ", ".join(
                f"{name}={count}"
                for name, count in summary["reads_by_protocol"].items()
            )
            lines.append(f"reads by protocol     {reads}")
        if summary["abort_reasons"]:
            reasons = ", ".join(
                f"{name}={count}"
                for name, count in summary["abort_reasons"].items()
            )
            lines.append(f"abort reasons         {reasons}")
        lines.append(f"walls released        {summary['walls_released']}")
        lines.append(f"walls retired         {summary['walls_retired']}")
        if summary["gc_passes"]:
            lines.append(
                f"gc passes             {summary['gc_passes']} "
                f"(pruned {summary['gc_pruned_versions']} versions)"
            )
        reported = summary.get("reported")
        if reported is not None:
            verdict = (
                "exact" if summary["matches_reported"] else "MISMATCH"
            )
            lines.append(
                "cross-check vs run    "
                f"{verdict} (reported commits={reported['commits']}, "
                f"restarts={reported['restarts']}, "
                f"blocked={reported['blocked_client_steps']})"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Wait chains
    # ------------------------------------------------------------------
    def _wall_for_episode(
        self, episode: BlockedEpisode
    ) -> Optional[WallReleasedEvent]:
        """The wall that ended a Protocol C wait.

        Prefer the wall the reader actually pinned once unblocked; fall
        back to the first wall released during the wait (the reader may
        never have been granted, e.g. the run ended first).
        """
        pinned = self.pins.get(episode.txn_id, [])
        if episode.end_step is not None:
            for wall_id in pinned:
                wall = self.walls.get(wall_id)
                if wall is None:
                    continue
                if episode.start_step is None or (
                    wall.step is None or wall.step >= episode.start_step
                ):
                    return wall
        for wall in self.walls.values():
            if (
                episode.start_step is not None
                and wall.step is not None
                and wall.step >= episode.start_step
            ):
                return wall
        return None

    def _lock_holders(self, episode: BlockedEpisode) -> list[int]:
        """Transactions plausibly holding the contested lock.

        A holder accessed the granule at or before the block and was
        still uncommitted at the block step.  Writers conflict with
        everything; readers only conflict with a blocked *write*.
        """
        granule = episode.granule
        if granule is None and isinstance(episode.wait_target, str):
            _, _, granule = episode.wait_target.partition("lock:")
        if granule is None or episode.start_step is None:
            return []
        holders: list[int] = []
        for step, txn_id, op in self._accesses.get(granule, []):
            if txn_id == episode.txn_id:
                continue
            if step is None or step > episode.start_step:
                continue
            if op == "r" and episode.op != "write":
                continue  # shared-shared: not a conflict
            timeline = self.timelines.get(txn_id)
            if timeline is None:
                continue
            end = timeline.end_step
            if end is None or end >= episode.start_step:
                if txn_id not in holders:
                    holders.append(txn_id)
        return holders

    def why_blocked(self, episode: BlockedEpisode) -> str:
        """One sentence naming what the episode waited on."""
        duration = episode.duration
        if episode.category == "wall":
            wall = self._wall_for_episode(episode)
            if wall is None:
                return (
                    f"T{episode.txn_id} blocked {duration} steps on a time "
                    "wall that was never released during the trace"
                )
            head = (
                f"T{episode.txn_id} blocked {duration} steps on wall "
                f"w{wall.wall_id}"
            )
            if wall.delayed_by_class is not None:
                held = (
                    f" held by T{wall.delayed_by_txn}"
                    if wall.delayed_by_txn is not None
                    else ""
                )
                return (
                    f"{head}, which waited on I_old of class "
                    f"{wall.delayed_by_class}{held}"
                )
            return (
                f"{head}, released at ts {wall.release_ts} once its "
                f"snapshot point {wall.base_time} settled"
            )
        if episode.category == "lock":
            holders = self._lock_holders(episode)
            head = (
                f"T{episode.txn_id} blocked {duration} steps on "
                f"{episode.op} lock for {episode.granule!r}"
            )
            if holders:
                names = ", ".join(f"T{h}" for h in holders)
                return f"{head}, held by {names}"
            return f"{head} (holder not visible in trace)"
        if episode.category == "txn":
            target = episode.wait_target
            fate = ""
            timeline = self.timelines.get(target) if target else None
            if timeline is not None:
                fate = f" (which later {timeline.outcome})"
            return (
                f"T{episode.txn_id} blocked {duration} steps on "
                f"T{target}{fate}"
            )
        return (
            f"T{episode.txn_id} blocked {duration} steps on "
            f"{episode.wait_target!r}"
        )

    def explain_txn(self, txn_id: int) -> str:
        timeline = self.timelines.get(txn_id)
        if timeline is None:
            return f"T{txn_id}: not in trace"
        kind = "read-only" if timeline.read_only else "update"
        klass = timeline.txn_class or "?"
        header = (
            f"T{txn_id} [{kind}, class {klass}"
            + (f", profile {timeline.profile}" if timeline.profile else "")
            + f"] — {timeline.outcome}"
            + (
                f" ({timeline.abort_reason})"
                if timeline.abort_reason
                else ""
            )
        )
        lines = [header]
        span = (
            f"steps {timeline.begin_step}..{timeline.end_step}"
            if timeline.begin_step is not None
            else "steps unknown"
        )
        lines.append(
            f"  {span}: {timeline.reads} reads, {timeline.writes} writes, "
            f"{timeline.blocked_steps} blocked steps"
        )
        if timeline.protocols:
            reads = ", ".join(
                f"{name}={count}"
                for name, count in sorted(timeline.protocols.items())
            )
            lines.append(f"  reads by protocol: {reads}")
        for event in timeline.events:
            lines.append(f"  {self._render_event(event)}")
        if timeline.episodes:
            lines.append("  waits:")
            for episode in timeline.episodes:
                lines.append(f"    {self.why_blocked(episode)}")
        return "\n".join(lines)

    @staticmethod
    def _render_event(event: Event) -> str:
        step = f"step {event.step}" if event.step is not None else "step ?"
        if isinstance(event, BeginEvent):
            return f"{step}: begin (ts {event.ts})"
        if isinstance(event, ReadEvent):
            protocol = f" [{event.protocol}]" if event.protocol else ""
            return (
                f"{step}: read {event.granule!r}{protocol} "
                f"-> version ts {event.version_ts}"
            )
        if isinstance(event, WriteEvent):
            return (
                f"{step}: write {event.granule!r} "
                f"at version ts {event.version_ts}"
            )
        if isinstance(event, BlockedEvent):
            return (
                f"{step}: {event.op} blocked on {event.wait_target!r}"
            )
        if isinstance(event, CommittedEvent):
            return f"{step}: committed (ts {event.ts})"
        if isinstance(event, AbortedEvent):
            return f"{step}: aborted ({event.reason})"
        return f"{step}: {event.kind}"

    # ------------------------------------------------------------------
    # Latency breakdown
    # ------------------------------------------------------------------
    def latency_breakdown(self) -> dict[str, int]:
        """Engine steps across all incarnations, bucketed by state.

        Committed (and still-open) incarnations split their lifetime
        into runnable vs blocked-per-target; aborted incarnations bill
        their whole lifetime to ``restarted`` — that work was thrown
        away, however it was spent.
        """
        buckets = {
            "runnable": 0,
            "blocked_on_lock": 0,
            "blocked_on_wall": 0,
            "blocked_on_txn": 0,
            "blocked_other": 0,
            "restarted": 0,
        }
        for timeline in self.timelines.values():
            lifetime = timeline.lifetime_steps
            if timeline.outcome == "aborted":
                buckets["restarted"] += lifetime
                continue
            blocked = 0
            for episode in timeline.episodes:
                key = f"blocked_on_{episode.category}"
                if key not in buckets:
                    key = "blocked_other"
                buckets[key] += episode.duration
                blocked += episode.duration
            buckets["runnable"] += max(lifetime - blocked, 0)
        return buckets

    def restarted_by_reason(self) -> dict[str, int]:
        """The ``restarted`` bucket split by abort-reason kind.

        Distributed traces surface their own kinds here (``node
        restart`` for incarnation fences, ``dead on wire`` for
        fast-abandoned transactions whose node was down) instead of
        disappearing into one catch-all number.
        """
        reasons: Counter = Counter()
        for timeline in self.timelines.values():
            if timeline.outcome == "aborted":
                reasons[abort_kind(timeline.abort_reason)] += (
                    timeline.lifetime_steps
                )
        return dict(reasons)

    def render_latency_breakdown(self) -> str:
        buckets = self.latency_breakdown()
        total = sum(buckets.values())
        lines = ["where transaction steps went", "----------------------------"]
        for name, steps in buckets.items():
            share = (100.0 * steps / total) if total else 0.0
            lines.append(f"{name:<16} {steps:>10}  ({share:5.1f}%)")
            if name == "restarted" and steps:
                by_reason = self.restarted_by_reason()
                for reason in sorted(
                    by_reason, key=lambda r: -by_reason[r]
                ):
                    lines.append(
                        f"  - {reason:<14} {by_reason[reason]:>8}"
                    )
        lines.append(f"{'total':<16} {total:>10}")
        return "\n".join(lines)
