"""Observability: structured event tracing, metrics, and explanations.

The paper's whole value proposition is *where time goes* — Protocol A
reads are free, Protocol B conflicts and time-wall waits are not — so
this package makes every scheduler decision observable:

* :mod:`repro.obs.events` — the typed event taxonomy (begin / read /
  write / blocked / aborted / committed / wall lifecycle / network
  messages / GC) plus the sink contract and the in-memory sinks;
* :mod:`repro.obs.jsonl` — a streaming JSONL sink and its loader, so
  traces survive the process and can be explained offline;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` sink keeping
  counters and histograms (per-protocol reads, block durations, wall
  lag, abort reasons, per-link delays);
* :mod:`repro.obs.explain` — reconstruct per-transaction timelines and
  wait chains from a trace and answer "why was this transaction
  waiting?";
* :mod:`repro.obs.causal` — reassemble a distributed trace into its
  happens-before DAG (message fates, RPC exchanges, op spans, down
  windows);
* :mod:`repro.obs.critical_path` — attribute every tick of every
  commit's latency to an exact bucket on top of that DAG.

Tracing is off by default and costs a single ``if self._sink is not
None`` branch per instrumented operation (see
:meth:`repro.scheduling.BaseScheduler.set_sink`).
"""

from repro.obs.causal import CausalTrace, is_dist_trace
from repro.obs.critical_path import (
    BUCKETS,
    CommitPath,
    CriticalPathAnalyzer,
)
from repro.obs.events import (
    EVENT_TYPES,
    AbortedEvent,
    BeginEvent,
    BlockedEvent,
    CommittedEvent,
    DigestStalenessEvent,
    Event,
    EventSink,
    GCPassEvent,
    MemorySink,
    MessageDeliveredEvent,
    MessageDroppedEvent,
    MessageSentEvent,
    NodeCrashedEvent,
    NodeRecoveredEvent,
    NullSink,
    OpSpanEvent,
    ReadEvent,
    RunEndEvent,
    TeeSink,
    WallPinnedEvent,
    WallReleasedEvent,
    WallRetiredEvent,
    WallUnpinnedEvent,
    WorkerProcessEvent,
    WriteEvent,
    event_from_record,
)
from repro.obs.explain import TraceExplainer
from repro.obs.jsonl import JsonlTraceSink, load_trace
from repro.obs.metrics import Histogram, MetricsRegistry, coverage_features

__all__ = [
    "BUCKETS",
    "EVENT_TYPES",
    "AbortedEvent",
    "BeginEvent",
    "BlockedEvent",
    "CausalTrace",
    "CommitPath",
    "CommittedEvent",
    "CriticalPathAnalyzer",
    "DigestStalenessEvent",
    "Event",
    "EventSink",
    "GCPassEvent",
    "Histogram",
    "JsonlTraceSink",
    "MemorySink",
    "MessageDeliveredEvent",
    "MessageDroppedEvent",
    "MessageSentEvent",
    "MetricsRegistry",
    "NodeCrashedEvent",
    "NodeRecoveredEvent",
    "NullSink",
    "OpSpanEvent",
    "ReadEvent",
    "RunEndEvent",
    "TeeSink",
    "TraceExplainer",
    "WallPinnedEvent",
    "WallReleasedEvent",
    "WallRetiredEvent",
    "WallUnpinnedEvent",
    "WorkerProcessEvent",
    "WriteEvent",
    "coverage_features",
    "event_from_record",
    "is_dist_trace",
    "load_trace",
]
