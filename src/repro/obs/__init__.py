"""Observability: structured event tracing, metrics, and explanations.

The paper's whole value proposition is *where time goes* — Protocol A
reads are free, Protocol B conflicts and time-wall waits are not — so
this package makes every scheduler decision observable:

* :mod:`repro.obs.events` — the typed event taxonomy (begin / read /
  write / blocked / aborted / committed / wall lifecycle / GC) plus the
  sink contract and the in-memory sinks;
* :mod:`repro.obs.jsonl` — a streaming JSONL sink and its loader, so
  traces survive the process and can be explained offline;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` sink keeping
  counters and histograms (per-protocol reads, block durations, wall
  lag, abort reasons);
* :mod:`repro.obs.explain` — reconstruct per-transaction timelines and
  wait chains from a trace and answer "why was this transaction
  waiting?".

Tracing is off by default and costs a single ``if self._sink is not
None`` branch per instrumented operation (see
:meth:`repro.scheduling.BaseScheduler.set_sink`).
"""

from repro.obs.events import (
    EVENT_TYPES,
    AbortedEvent,
    BeginEvent,
    BlockedEvent,
    CommittedEvent,
    Event,
    EventSink,
    GCPassEvent,
    MemorySink,
    NullSink,
    ReadEvent,
    RunEndEvent,
    TeeSink,
    WallPinnedEvent,
    WallReleasedEvent,
    WallRetiredEvent,
    WallUnpinnedEvent,
    WriteEvent,
    event_from_record,
)
from repro.obs.explain import TraceExplainer
from repro.obs.jsonl import JsonlTraceSink, load_trace
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "EVENT_TYPES",
    "AbortedEvent",
    "BeginEvent",
    "BlockedEvent",
    "CommittedEvent",
    "Event",
    "EventSink",
    "GCPassEvent",
    "Histogram",
    "JsonlTraceSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "ReadEvent",
    "RunEndEvent",
    "TeeSink",
    "TraceExplainer",
    "WallPinnedEvent",
    "WallReleasedEvent",
    "WallRetiredEvent",
    "WallUnpinnedEvent",
    "WriteEvent",
    "event_from_record",
    "load_trace",
]
