"""Typed trace events and the sink contract.

Every instrumented subsystem — :class:`~repro.scheduling.BaseScheduler`
(and through it HDD plus all five baselines), the
:class:`~repro.core.timewall.TimeWallManager`, the GC driver and the
simulator — emits these events into a single pluggable *sink*.  Events
are plain frozen dataclasses carrying only JSON-representable values
(ints, strings, dicts, lists), so a trace round-trips losslessly
through the JSONL sink (:mod:`repro.obs.jsonl`).

Common fields:

``step``
    The driving engine's step counter at emission time (``None`` when
    the emitter runs outside a simulator, e.g. a hand-driven test).
``ts``
    The scheduler's logical clock at emission time.  The clock ticks
    faster than the engine (operations draw timestamps), so ``ts``
    orders events totally while ``step`` localises them in the run.

This module deliberately imports nothing from the rest of the library
so every layer (scheduling, timewall, sim) can depend on it without
cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import ClassVar, Optional, Union

#: What a blocked operation waits on: another transaction's id, or a
#: named condition such as ``"timewall"`` / ``"lock:<granule>"``.
#: Mirrors :data:`repro.scheduling.WaitTarget` without importing it.
WaitTargetValue = Union[int, str]


@dataclass(frozen=True, slots=True, kw_only=True)
class Event:
    """Base of every trace event; never emitted itself."""

    kind: ClassVar[str] = "event"

    step: Optional[int] = None
    ts: int = 0

    def to_record(self) -> dict:
        """A flat JSON-ready dict, ``kind`` included."""
        record = {"kind": self.kind}
        record.update(asdict(self))
        return record


# ----------------------------------------------------------------------
# Transaction lifecycle and operations
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True, kw_only=True)
class BeginEvent(Event):
    """A transaction began (``I(t) == ts``)."""

    kind: ClassVar[str] = "begin"

    txn_id: int = 0
    txn_class: Optional[str] = None
    read_only: bool = False
    profile: Optional[str] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class ReadEvent(Event):
    """A granted read.

    ``protocol`` is the HDD dispatch that served it (``"A"`` for
    activity-link walls, including the fictitious-class reader case,
    ``"B"`` for intra-class TO/MVTO, ``"C"`` for time-wall snapshots);
    ``None`` for baselines, which have no protocol split.
    """

    kind: ClassVar[str] = "read"

    txn_id: int = 0
    txn_class: Optional[str] = None
    granule: Optional[str] = None
    version_ts: Optional[int] = None
    protocol: Optional[str] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class WriteEvent(Event):
    """A granted write (version installed at ``version_ts``)."""

    kind: ClassVar[str] = "write"

    txn_id: int = 0
    txn_class: Optional[str] = None
    granule: Optional[str] = None
    version_ts: Optional[int] = None
    protocol: Optional[str] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class BlockedEvent(Event):
    """An operation returned a blocked outcome.

    ``op`` names the blocked request (``read`` / ``write`` /
    ``commit``); ``wait_target`` is what it waits for (a transaction
    id, ``"timewall"``, or ``"lock:<granule>"``).  The wait *ends* at
    the transaction's next event — the explainer pairs them up.
    """

    kind: ClassVar[str] = "blocked"

    txn_id: int = 0
    txn_class: Optional[str] = None
    op: str = "read"
    granule: Optional[str] = None
    wait_target: Optional[WaitTargetValue] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class AbortedEvent(Event):
    """A transaction was aborted (voluntarily, by rejection, or wounded)."""

    kind: ClassVar[str] = "aborted"

    txn_id: int = 0
    txn_class: Optional[str] = None
    reason: Optional[str] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class CommittedEvent(Event):
    """A transaction committed (``C(t) == ts``)."""

    kind: ClassVar[str] = "committed"

    txn_id: int = 0
    txn_class: Optional[str] = None


# ----------------------------------------------------------------------
# Time-wall lifecycle (HDD Protocol C support)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True, kw_only=True)
class WallReleasedEvent(Event):
    """A time wall was released.

    ``wall_id`` is the wall's release sequence number (``w1, w2, ...``
    in rendered output).  ``delayed_by_class`` / ``delayed_by_txn``
    name the unsettled class (and its oldest open transaction) that
    blocked the wall computation most recently before this release —
    the "who held the wall back" half of a Protocol C wait chain.
    """

    kind: ClassVar[str] = "wall_released"

    wall_id: int = 0
    base_time: int = 0
    release_ts: int = 0
    components: dict[str, int] = field(default_factory=dict)
    delayed_by_class: Optional[str] = None
    delayed_by_txn: Optional[int] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class WallPinnedEvent(Event):
    """A Protocol C transaction pinned a wall (its snapshot is fixed)."""

    kind: ClassVar[str] = "wall_pinned"

    wall_id: int = 0
    txn_id: Optional[int] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class WallUnpinnedEvent(Event):
    """A Protocol C transaction released its wall pin (reader finished)."""

    kind: ClassVar[str] = "wall_unpinned"

    wall_id: int = 0
    txn_id: Optional[int] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class WallRetiredEvent(Event):
    """A retirement pass dropped dead walls from the manager."""

    kind: ClassVar[str] = "wall_retired"

    wall_ids: list[int] = field(default_factory=list)
    count: int = 0


# ----------------------------------------------------------------------
# Distributed runtime: network messages and digest staleness
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True, kw_only=True)
class MessageSentEvent(Event):
    """A message left a node (``ts`` here is the *network* tick).

    The causal fields encode the happens-before DAG: ``lamport`` is the
    sender's Lamport stamp, ``txn_id`` the transaction whose work the
    message carries (``None`` for background traffic like heartbeats),
    ``parent_span`` the ``seq`` of the message whose delivery caused
    this send (a response's parent is the request; gossip triggered
    inside a handler points at the handled message), ``retransmit_of``
    the original attempt's ``seq`` for coordinator retransmissions, and
    ``req`` the RPC request id shared by a request, its retransmits and
    its response.
    """

    kind: ClassVar[str] = "msg_sent"

    seq: int = 0
    src: str = ""
    dst: str = ""
    msg_kind: str = ""
    lamport: int = 0
    txn_id: Optional[int] = None
    parent_span: Optional[int] = None
    retransmit_of: Optional[int] = None
    req: Optional[int] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class MessageDeliveredEvent(Event):
    """A message reached its destination handler.

    Carries the same causal fields as :class:`MessageSentEvent` (the
    Lamport stamp is the one carried *on the wire*; the receiver's
    clock advances past it before the handler runs).
    """

    kind: ClassVar[str] = "msg_delivered"

    seq: int = 0
    src: str = ""
    dst: str = ""
    msg_kind: str = ""
    delay: int = 0
    lamport: int = 0
    txn_id: Optional[int] = None
    parent_span: Optional[int] = None
    retransmit_of: Optional[int] = None
    req: Optional[int] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class MessageDroppedEvent(Event):
    """A message died on the wire.

    ``fate`` distinguishes random loss (``dropped``), a link partition
    (``partitioned``) and a crashed destination (``dst-down``).
    """

    kind: ClassVar[str] = "msg_dropped"

    seq: int = 0
    src: str = ""
    dst: str = ""
    msg_kind: str = ""
    fate: str = "dropped"
    lamport: int = 0
    txn_id: Optional[int] = None
    parent_span: Optional[int] = None
    retransmit_of: Optional[int] = None
    req: Optional[int] = None


@dataclass(frozen=True, slots=True, kw_only=True)
class DigestStalenessEvent(Event):
    """A gossip batch advanced a remote-class digest at some node.

    ``staleness`` is how far the receiver's knowledge of the sender's
    class lagged logical time when the batch landed (0 on an ideal
    network) — the price readers pay in extra wall conservatism.
    ``ts`` is the receiver's *logical* clock (``known_now``); ``tick``
    localises the same moment on the network-tick axis the message
    events use, so staleness windows compose with the causal DAG.
    """

    kind: ClassVar[str] = "digest_staleness"

    node: str = ""
    source_class: str = ""
    staleness: int = 0
    applied: int = 0
    tick: int = 0


@dataclass(frozen=True, slots=True, kw_only=True)
class OpSpanEvent(Event):
    """One top-level coordinator operation, in network ticks.

    Emitted when the operation returns (``ts`` is then the network
    tick, equal to ``end_tick``).  Spans of one transaction tile its
    commit latency: ticks between its spans are coordinator queueing
    (the coordinator was serving other clients), ticks inside a span
    belong to the RPCs issued during it.  ``txn_id`` is ``None`` for
    the simulator's idle wall polls; ``status`` is the outcome kind
    (``granted`` / ``blocked`` / ``aborted``) or ``""`` for operations
    without one (begin, poll).

    The transaction server (:mod:`repro.serve`) emits the same event
    per request, with ticks on the scheduler's logical clock instead of
    network ticks and ``status`` ``"error"`` for protocol violations.
    """

    kind: ClassVar[str] = "op_span"

    txn_id: Optional[int] = None
    op: str = ""
    start_tick: int = 0
    end_tick: int = 0
    status: str = ""


@dataclass(frozen=True, slots=True, kw_only=True)
class NodeCrashedEvent(Event):
    """A segment node went down (``ts`` is the network tick).

    With :class:`NodeRecoveredEvent` this brackets the node's down
    window — the critical-path analyzer bills request ticks that
    overlap it to WAL replay rather than retransmit backoff, and the
    fencing aborts of transactions whose state died inside it are the
    crash-recovery edges of the causal DAG.
    """

    kind: ClassVar[str] = "node_crashed"

    node: str = ""


@dataclass(frozen=True, slots=True, kw_only=True)
class NodeRecoveredEvent(Event):
    """A segment node restarted from its write-ahead log.

    ``incarnation`` is the post-recovery incarnation (responses carry
    it; the coordinator fences transactions that touched an older one)
    and ``wal_records`` how many WAL records the rebuild replayed.
    """

    kind: ClassVar[str] = "node_recovered"

    node: str = ""
    incarnation: int = 0
    wal_records: int = 0


@dataclass(frozen=True, slots=True, kw_only=True)
class WorkerProcessEvent(Event):
    """A real worker process changed state (the ``--real`` transport).

    ``what`` is one of ``spawned`` / ``killed`` / ``restarted`` /
    ``exited``; ``pid`` is the OS process id, so a trace can be joined
    against system-level tooling (ps, strace, perf).  Logical crash
    semantics still arrive as :class:`NodeCrashedEvent` /
    :class:`NodeRecoveredEvent` — this event records the *physical*
    process lifecycle underneath them.
    """

    kind: ClassVar[str] = "worker_process"

    node: str = ""
    pid: int = 0
    what: str = ""


# ----------------------------------------------------------------------
# Transaction server (repro serve)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True, kw_only=True)
class ConnOpenedEvent(Event):
    """A client connection reached the transaction server.

    ``peer`` is the transport's description of the remote end (socket
    peername, or the memory transport's label).
    """

    kind: ClassVar[str] = "conn_opened"

    conn_id: int = 0
    peer: str = ""


@dataclass(frozen=True, slots=True, kw_only=True)
class ConnClosedEvent(Event):
    """A client connection ended.

    ``open_txns`` counts transactions the server had to abort because
    the client disappeared mid-transaction (their aborts carry a
    ``client gone:`` reason and precede this event in the trace);
    ``requests`` is the connection's lifetime request count.
    """

    kind: ClassVar[str] = "conn_closed"

    conn_id: int = 0
    open_txns: int = 0
    requests: int = 0


@dataclass(frozen=True, slots=True, kw_only=True)
class QueueDepthEvent(Event):
    """A connection's in-flight pipeline reached a new high-water mark.

    Emitted only when ``depth`` exceeds the connection's previous
    maximum, so traces carry the envelope of queue growth rather than
    one gauge sample per request.
    """

    kind: ClassVar[str] = "queue_depth"

    conn_id: int = 0
    depth: int = 0


# ----------------------------------------------------------------------
# Garbage collection and run bookkeeping
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True, kw_only=True)
class GCPassEvent(Event):
    """One garbage-collection pass completed."""

    kind: ClassVar[str] = "gc_pass"

    pruned_versions: int = 0
    walls_retired: int = 0
    #: Wall-clock cost of the pass, and the frozen-prefix cache totals
    #: at its end (cumulative over the run) — zero/absent in records
    #: from engines that do not time their passes.
    duration_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Admission-policy breakdown (DESIGN.md §12): cold-wall lookups
    #: that bypassed the cache, and live cache entries at pass end.
    cache_cold: int = 0
    cache_entries: int = 0


@dataclass(frozen=True, slots=True, kw_only=True)
class RunEndEvent(Event):
    """The simulator finished; carries its authoritative totals.

    The explainer *derives* commit/restart/blocked-step totals from the
    event stream and uses this record to cross-check them (and to close
    still-blocked episodes at the final step).
    """

    kind: ClassVar[str] = "run_end"

    steps: int = 0
    commits: int = 0
    restarts: int = 0
    blocked_client_steps: int = 0


EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        BeginEvent,
        ReadEvent,
        WriteEvent,
        BlockedEvent,
        AbortedEvent,
        CommittedEvent,
        WallReleasedEvent,
        WallPinnedEvent,
        WallUnpinnedEvent,
        WallRetiredEvent,
        MessageSentEvent,
        MessageDeliveredEvent,
        MessageDroppedEvent,
        DigestStalenessEvent,
        OpSpanEvent,
        NodeCrashedEvent,
        NodeRecoveredEvent,
        WorkerProcessEvent,
        ConnOpenedEvent,
        ConnClosedEvent,
        QueueDepthEvent,
        GCPassEvent,
        RunEndEvent,
    )
}


def event_from_record(record: dict) -> Event:
    """Rebuild an event from :meth:`Event.to_record` output."""
    data = dict(record)
    kind = data.pop("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    return cls(**data)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class EventSink:
    """Where events go.  Implementations must tolerate high rates.

    The contract is two methods: :meth:`emit` (hot path — called for
    every instrumented operation) and :meth:`close` (flush and release
    resources; idempotent).
    """

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default is a no-op
        pass


class NullSink(EventSink):
    """Tracing disabled.

    Schedulers normalise a ``NullSink`` to ``None`` internally
    (:meth:`repro.scheduling.BaseScheduler.set_sink`), so the hot paths
    pay exactly one ``if self._sink is not None`` branch and zero
    event construction — this class never actually sees an event in
    normal operation.  It exists so drivers can pass "explicitly no
    tracing" and so the overhead claim is benchmarkable.
    """

    def emit(self, event: Event) -> None:
        pass


class MemorySink(EventSink):
    """Collect events into a list (tests, in-process explainers)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)


class TeeSink(EventSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, sinks: list[EventSink]) -> None:
        self.sinks = list(sinks)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
