"""Exact commit critical-path attribution for distributed traces.

Where does a committed transaction's latency go?  The monolithic
:class:`~repro.obs.explain.TraceExplainer` answers in engine steps;
this module answers in *network ticks* for the distributed runtime,
with the same discipline: **every tick of every commit's latency lands
in exactly one bucket, and the per-transaction sums cross-check the
measured latency exactly** — an analyzer bug shows up as a failed
reconciliation, not a silently wrong report.

The exactness argument rests on two structural facts of the runtime:

1. Network ticks only advance inside coordinator RPC pumps, and every
   pump runs inside a top-level operation funnel that emits an
   ``op_span`` event — so a transaction's latency (commit-span end
   minus begin-span start) splits exactly into *its own spans* plus
   *gaps between them* (the coordinator serving other clients).
2. Within a span, RPC exchanges tile the ticks: each exchange's
   interval runs from its first send to the next exchange's first send
   (or the span end), and no ticks pass outside a pump.

Buckets (``BUCKETS``, in render order):

``link_latency``
    Transit of the winning request attempt plus its response hop.
``retransmit_backoff``
    Ticks between an exchange's first send and its winning attempt's
    send that the destination spent *up* — pure RTO/drop cost.
``wal_replay``
    The same gap's ticks that overlap the destination's down window —
    the transaction waited for crash recovery, not the wire.
``wall_wait``
    Protocol C ticks spent waiting on a time wall: poll exchanges
    inside ``read`` spans, and gaps after a ``blocked`` span.
``digest_staleness``
    The wall-wait ticks during which the leader's digests were
    provably lagging (carved out of ``wall_wait`` using the staleness
    step functions) — the gossip-freshness share of wall conservatism.
``poll_overhead``
    Abandoned unreliable polls outside read spans (lifecycle polls
    burning their budget under faults).
``coordinator_queueing``
    Ticks between the transaction's spans, plus in-span exchanges run
    on behalf of *other* transactions (nested fence cleanups).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.causal import CausalTrace, OpRegion, RpcExchange
from repro.obs.metrics import Histogram

BUCKETS = (
    "link_latency",
    "retransmit_backoff",
    "wal_replay",
    "wall_wait",
    "digest_staleness",
    "poll_overhead",
    "coordinator_queueing",
)


@dataclass
class CommitPath:
    """One committed transaction's fully attributed latency."""

    txn_id: int
    txn_class: Optional[str] = None
    begin_tick: int = 0
    commit_tick: int = 0
    buckets: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in BUCKETS}
    )
    spans: int = 0
    rpcs: int = 0
    retransmits: int = 0
    #: Which wall (and delaying class) resolved each wall wait.
    wall_names: Counter = field(default_factory=Counter)

    @property
    def latency(self) -> int:
        return self.commit_tick - self.begin_tick

    @property
    def attributed(self) -> int:
        return sum(self.buckets.values())

    @property
    def exact(self) -> bool:
        return self.attributed == self.latency

    def dominant(self) -> str:
        if self.latency == 0:
            return "-"
        return max(BUCKETS, key=lambda name: self.buckets[name])


class CriticalPathAnalyzer:
    """Walk back from every commit and attribute its ticks exactly."""

    def __init__(self, trace: CausalTrace) -> None:
        self.trace = trace
        self._paths: Optional[dict[int, CommitPath]] = None
        #: Committed transactions the trace cannot explain (no begin
        #: span recorded — e.g. a trace attached mid-run).
        self.skipped: list[int] = []

    # ------------------------------------------------------------------
    # Per-transaction attribution
    # ------------------------------------------------------------------
    def paths(self) -> dict[int, CommitPath]:
        if self._paths is None:
            self._paths = {}
            self.skipped = []
            for txn_id in sorted(self.trace.commits):
                path = self._attribute(txn_id)
                if path is None:
                    self.skipped.append(txn_id)
                else:
                    self._paths[txn_id] = path
        return self._paths

    def _attribute(self, txn_id: int) -> Optional[CommitPath]:
        regions = self.trace.regions_by_txn.get(txn_id, [])
        if not regions or regions[0].span.op != "begin":
            return None
        commit_regions = [
            r
            for r in regions
            if r.span.op == "commit" and r.span.status == "granted"
        ]
        if not commit_regions:
            return None
        last = commit_regions[-1]
        lifetime = regions[: regions.index(last) + 1]
        path = CommitPath(
            txn_id=txn_id,
            txn_class=self.trace.commits[txn_id].txn_class,
            begin_tick=lifetime[0].span.start_tick,
            commit_tick=last.span.end_tick,
            spans=len(lifetime),
        )
        wall_intervals: list[tuple[int, int, int]] = []
        for previous, region in zip(lifetime, lifetime[1:]):
            gap = region.span.start_tick - previous.span.end_tick
            if gap <= 0:
                continue
            if previous.span.status == "blocked":
                wall_intervals.append(
                    (
                        previous.span.end_tick,
                        region.span.start_tick,
                        previous.span_index,
                    )
                )
            else:
                path.buckets["coordinator_queueing"] += gap
        for region in lifetime:
            self._attribute_region(path, region, wall_intervals)
        self._carve_staleness(path, wall_intervals)
        return path

    def _attribute_region(
        self,
        path: CommitPath,
        region: OpRegion,
        wall_intervals: list[tuple[int, int, int]],
    ) -> None:
        exchanges = [
            self.trace.exchanges[req]
            for req in region.rpc_reqs
            if req in self.trace.exchanges
        ]
        for position, exchange in enumerate(exchanges):
            start = exchange.origin.sent_tick or 0
            if position + 1 < len(exchanges):
                end = exchanges[position + 1].origin.sent_tick or start
                boundary_index = exchanges[position + 1].origin.sent_index
            else:
                end = region.span.end_tick
                boundary_index = region.span_index
            length = end - start
            if length <= 0:
                continue
            if exchange.txn_id != path.txn_id:
                # Work the coordinator did for someone else inside this
                # transaction's operation (nested fence cleanup).
                path.buckets["coordinator_queueing"] += length
                continue
            path.rpcs += 1
            path.retransmits += exchange.retransmits
            if exchange.kind == "POLL":
                self._attribute_poll(
                    path,
                    region,
                    exchange,
                    start,
                    end,
                    boundary_index,
                    wall_intervals,
                )
            else:
                self._attribute_reliable(path, exchange, start, end)

    def _answered_in_place(
        self, exchange: RpcExchange, boundary_index: Optional[int]
    ) -> bool:
        """Did the coordinator's pump consume this exchange's response?

        Decided by *file order*: the response's delivery event must
        appear before the next exchange's send (or the span's end) —
        a POLL response delivered later hit a coordinator that had
        already abandoned the wait.
        """
        response = exchange.first_response()
        if response is None or response.delivered_index is None:
            return False
        if boundary_index is None:
            return True
        return response.delivered_index < boundary_index

    def _attribute_reliable(
        self,
        path: CommitPath,
        exchange: RpcExchange,
        start: int,
        end: int,
    ) -> None:
        winner = exchange.winning_attempt()
        if winner is None or winner.sent_tick is None:
            # A reliable RPC is always answered; a missing response
            # means the trace was cut short — bill transit so the sum
            # still tiles.
            path.buckets["link_latency"] += end - start
            return
        winner_send = min(max(winner.sent_tick, start), end)
        replay = self.trace.node_down_overlap(
            exchange.dst, start, winner_send
        )
        path.buckets["wal_replay"] += replay
        path.buckets["retransmit_backoff"] += (
            winner_send - start - replay
        )
        path.buckets["link_latency"] += end - winner_send

    def _attribute_poll(
        self,
        path: CommitPath,
        region: OpRegion,
        exchange: RpcExchange,
        start: int,
        end: int,
        boundary_index: Optional[int],
        wall_intervals: list[tuple[int, int, int]],
    ) -> None:
        if region.span.op == "read":
            # The Protocol C bootstrap poll: the reader is waiting for
            # a wall to exist.  Carved against staleness later.
            wall_intervals.append(
                (start, end, exchange.origin.sent_index or 0)
            )
            return
        if self._answered_in_place(exchange, boundary_index):
            path.buckets["link_latency"] += end - start
        else:
            path.buckets["poll_overhead"] += end - start

    def _carve_staleness(
        self,
        path: CommitPath,
        wall_intervals: list[tuple[int, int, int]],
    ) -> None:
        leader = self.trace.leader
        affected = (
            self.trace.staleness_affected(leader) if leader else []
        )
        wall_indices = [index for index, _event in self.trace.walls]
        for start, end, anchor in wall_intervals:
            total = end - start
            stale = _overlap(start, end, affected)
            path.buckets["digest_staleness"] += stale
            path.buckets["wall_wait"] += total - stale
            slot = bisect_right(wall_indices, anchor)
            if slot < len(self.trace.walls):
                _index, wall = self.trace.walls[slot]
                name = f"w{wall.wall_id}"
                if wall.delayed_by_class is not None:
                    name += f" (held by {wall.delayed_by_class})"
                path.wall_names[name] += 1

    # ------------------------------------------------------------------
    # Run-level aggregation
    # ------------------------------------------------------------------
    def totals(self) -> dict[str, int]:
        totals = {name: 0 for name in BUCKETS}
        for path in self.paths().values():
            for name in BUCKETS:
                totals[name] += path.buckets[name]
        return totals

    def check(self) -> list[str]:
        """The exactness invariant, transaction by transaction."""
        problems = []
        for txn_id, path in sorted(self.paths().items()):
            if not path.exact:
                problems.append(
                    f"txn {txn_id}: buckets sum to {path.attributed} "
                    f"but measured latency is {path.latency}"
                )
        return problems

    def link_histograms(self) -> dict[str, Histogram]:
        """Per-link delivery-delay histograms, offline."""
        histograms: dict[str, Histogram] = {}
        for view in self.trace.messages.values():
            if view.delay is None:
                continue
            name = f"{view.src}->{view.dst}"
            histogram = histograms.get(name)
            if histogram is None:
                histogram = histograms[name] = Histogram()
            histogram.record(float(view.delay))
        return histograms

    def retransmit_counts(self) -> Counter:
        counts: Counter = Counter()
        for view in self.trace.messages.values():
            if view.retransmit_of is not None:
                counts[view.msg_kind] += 1
        return counts

    def staleness_histograms(self) -> dict[str, Histogram]:
        """Staleness distribution per gossip source class."""
        histograms: dict[str, Histogram] = {}
        for (_node, cls), points in sorted(
            self.trace.staleness_points.items()
        ):
            histogram = histograms.get(cls)
            if histogram is None:
                histogram = histograms[cls] = Histogram()
            for _tick, staleness in points:
                histogram.record(float(staleness))
        return histograms

    def summary(self) -> dict[str, object]:
        paths = self.paths()
        totals = self.totals()
        latency = sum(p.latency for p in paths.values())
        problems = self.check() + self.trace.validate()
        return {
            "commits_explained": len(paths),
            "commits_skipped": len(self.skipped),
            "total_latency_ticks": latency,
            "buckets": totals,
            "exact": not problems,
            "problems": problems,
            "retransmits": dict(self.retransmit_counts()),
            "links": {
                name: histogram.summary()
                for name, histogram in sorted(
                    self.link_histograms().items()
                )
            },
            "staleness": {
                name: histogram.summary()
                for name, histogram in sorted(
                    self.staleness_histograms().items()
                )
            },
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_txn(self, txn_id: int) -> str:
        paths = self.paths()
        path = paths.get(txn_id)
        if path is None:
            if txn_id in self.trace.commits:
                return (
                    f"txn {txn_id} committed but its begin lies outside "
                    "this trace"
                )
            aborted = self.trace.aborts.get(txn_id)
            if aborted is not None:
                return (
                    f"txn {txn_id} aborted: "
                    f"{aborted.reason or 'unknown reason'}"
                )
            return f"txn {txn_id} not found in this trace"
        cls = path.txn_class or "-"
        lines = [
            f"== txn {txn_id} [{cls}] critical path ==",
            f"committed after {path.latency} network ticks "
            f"(tick {path.begin_tick} -> {path.commit_tick}; "
            f"{path.spans} ops, {path.rpcs} rpcs, "
            f"{path.retransmits} retransmits)",
        ]
        width = max(len(name) for name in BUCKETS)
        for name in BUCKETS:
            value = path.buckets[name]
            share = (
                100.0 * value / path.latency if path.latency else 0.0
            )
            lines.append(
                f"  {name.ljust(width)}  {value:>6}  {share:5.1f}%"
            )
        for name, count in path.wall_names.most_common():
            lines.append(f"  wall wait resolved by {name} x{count}")
        lines.append(
            "exact"
            if path.exact
            else f"INEXACT: attributed {path.attributed} "
            f"of {path.latency}"
        )
        return "\n".join(lines)

    def render(self, top: int = 10) -> str:
        paths = self.paths()
        lines = ["== commit critical paths (network ticks) =="]
        if not paths:
            lines.append("(no committed transactions with full spans)")
            return "\n".join(lines)
        totals = self.totals()
        latency = sum(p.latency for p in paths.values())
        lines.append(
            f"{len(paths)} commits, {latency} latency ticks attributed"
            + (
                f" ({len(self.skipped)} commits outside the trace)"
                if self.skipped
                else ""
            )
        )
        lines.append("")
        lines.append("-- where the ticks go --")
        width = max(len(name) for name in BUCKETS)
        for name in sorted(BUCKETS, key=lambda n: -totals[n]):
            value = totals[name]
            share = (100.0 * value / latency) if latency else 0.0
            lines.append(
                f"  {name.ljust(width)}  {value:>8}  {share:5.1f}%"
            )
        problems = self.check() + self.trace.validate()
        lines.append("")
        if problems:
            lines.append("-- PROBLEMS --")
            lines.extend(f"  {p}" for p in problems)
        else:
            lines.append(
                "exact: every commit's buckets sum to its measured "
                "latency"
            )
        slowest = sorted(
            paths.values(), key=lambda p: -p.latency
        )[:top]
        lines.append("")
        lines.append(f"-- slowest commits (top {len(slowest)}) --")
        for path in slowest:
            cls = path.txn_class or "-"
            lines.append(
                f"  t{path.txn_id} [{cls}] {path.latency} ticks "
                f"({path.spans} ops, {path.rpcs} rpcs, "
                f"{path.retransmits} rtx) -> {path.dominant()}"
            )
            for name, count in path.wall_names.most_common(2):
                lines.append(f"      wall wait resolved by {name} "
                             f"x{count}")
        retransmits = self.retransmit_counts()
        if retransmits:
            lines.append("")
            lines.append("-- retransmits by kind --")
            for kind, count in retransmits.most_common():
                lines.append(f"  {kind}: {count}")
        links = self.link_histograms()
        if links:
            lines.append("")
            lines.append("-- link delay (delivered messages) --")
            for name in sorted(links):
                s = links[name].summary()
                lines.append(
                    f"  {name}: n={s['count']} mean={s['mean']} "
                    f"p95={s['p95']} max={s['max']}"
                )
        staleness = self.staleness_histograms()
        if staleness:
            lines.append("")
            lines.append("-- digest staleness by source class --")
            for name in sorted(staleness):
                s = staleness[name].summary()
                lines.append(
                    f"  {name}: n={s['count']} mean={s['mean']} "
                    f"p50={s['p50']} p95={s['p95']} max={s['max']}"
                )
        return "\n".join(lines)


def _overlap(
    start: int, end: int, intervals: list[tuple[int, int]]
) -> int:
    total = 0
    for i_start, i_end in intervals:
        lo = max(start, i_start)
        hi = min(end, i_end)
        if hi > lo:
            total += hi - lo
    return total
