"""A metrics-registry sink: counters and histograms over the event bus.

Attach a :class:`MetricsRegistry` (alone or inside a
:class:`~repro.obs.events.TeeSink`) to any scheduler and it aggregates
the trace online, without retaining events:

* **counters** — event counts by kind, reads split by protocol
  (``read.protocol.A/B/C`` vs ``read.protocol.none`` for baselines),
  blocks by wait-target category, aborts by reason, wall lifecycle and
  GC totals;
* **histograms** — block durations in engine steps, split by what was
  waited on (``block_steps.wall`` / ``.lock`` / ``.txn``), and
  ``wall_lag`` (release timestamp minus base time: how long each wall
  computation trailed the activity it certifies).

Block durations pair each :class:`~repro.obs.events.BlockedEvent` with
the same transaction's *next* event — a retry that blocks again simply
extends the episode, so the per-transaction sum matches the
simulator's ``blocked_client_steps`` accounting.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Optional, Union

from repro.obs.events import (
    AbortedEvent,
    BeginEvent,
    BlockedEvent,
    CommittedEvent,
    DigestStalenessEvent,
    Event,
    EventSink,
    GCPassEvent,
    MessageDeliveredEvent,
    MessageDroppedEvent,
    MessageSentEvent,
    OpSpanEvent,
    ReadEvent,
    RunEndEvent,
    WallPinnedEvent,
    WallReleasedEvent,
    WallRetiredEvent,
    WallUnpinnedEvent,
    WriteEvent,
)


def abort_kind(reason: Optional[str]) -> str:
    """Bucket a free-form abort reason for counting.

    Reasons carry per-instance detail after a colon ("MVTO write
    rejected: inserting hub:g0^175 ..."); counters keep only the stable
    prefix so cardinality stays bounded.  Distributed-runtime reasons
    get their own stable buckets: ``node restart`` (an incarnation
    fence killed the transaction — including the colon-free phrasing a
    killed transaction's next operation reports) and ``dead on wire``
    (the wire fence fast-abandoned it while its node was down).  The
    transaction server's disconnect aborts arrive as ``client gone:
    connection N closed ...`` and bucket to ``client gone`` through the
    ordinary prefix rule.
    """
    if not reason:
        return "unknown"
    if reason.startswith("transaction killed by a node restart"):
        return "node restart"
    return reason.split(":", 1)[0].strip()


def wait_category(target: Union[int, str, None]) -> str:
    """Classify a wait target: ``wall`` / ``lock`` / ``txn`` / ``other``."""
    if isinstance(target, int):
        return "txn"
    if target == "timewall":
        return "wall"
    if isinstance(target, str) and target.startswith("lock:"):
        return "lock"
    return "other"


class Histogram:
    """A sample accumulator summarised through the shared percentile."""

    def __init__(self) -> None:
        self.samples: list[float] = []

    def record(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def quantile(self, q: float) -> float:
        # Imported lazily: repro.sim pulls in the scheduler layer, which
        # itself imports repro.obs — a cycle at module-import time.
        from repro.sim.metrics import percentile

        return percentile(self.samples, q)

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "p50": round(self.quantile(0.50), 3),
            "p95": round(self.quantile(0.95), 3),
            "max": max(self.samples) if self.samples else 0.0,
        }


class MetricsRegistry(EventSink):
    """Aggregate a trace into counters and histograms, online."""

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self.histograms: dict[str, Histogram] = {}
        #: Open blocked episode per transaction: (start step, category).
        self._blocked_since: dict[int, tuple[Optional[int], str]] = {}

    # ------------------------------------------------------------------
    # Sink contract
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        self.counters[f"events.{event.kind}"] += 1
        if isinstance(event, ReadEvent):
            self._close_block(event)
            protocol = event.protocol if event.protocol else "none"
            self.counters[f"read.protocol.{protocol}"] += 1
        elif isinstance(event, WriteEvent):
            self._close_block(event)
        elif isinstance(event, BlockedEvent):
            category = wait_category(event.wait_target)
            self.counters[f"blocked.{category}"] += 1
            open_episode = self._blocked_since.get(event.txn_id)
            if open_episode is not None:
                self._record_block(open_episode, event.step)
            self._blocked_since[event.txn_id] = (event.step, category)
        elif isinstance(event, CommittedEvent):
            self._close_block(event)
        elif isinstance(event, AbortedEvent):
            self._close_block(event)
            self.counters[f"abort.reason.{abort_kind(event.reason)}"] += 1
        elif isinstance(event, BeginEvent):
            if event.read_only:
                self.counters["begin.read_only"] += 1
            else:
                self.counters["begin.update"] += 1
        elif isinstance(event, WallReleasedEvent):
            self.histogram("wall_lag").record(
                float(event.release_ts - event.base_time)
            )
            if event.delayed_by_class is not None:
                self.counters["wall.releases_delayed"] += 1
        elif isinstance(event, WallRetiredEvent):
            self.counters["wall.retired"] += event.count
        elif isinstance(event, GCPassEvent):
            self.counters["gc.pruned_versions"] += event.pruned_versions
        elif isinstance(event, RunEndEvent):
            self._drain_open_blocks(event.step)
        elif isinstance(event, MessageSentEvent):
            self.counters[f"net.sent.{event.msg_kind}"] += 1
            if event.retransmit_of is not None:
                self.counters[f"net.retransmit.{event.msg_kind}"] += 1
        elif isinstance(event, MessageDeliveredEvent):
            self.counters["net.delivered"] += 1
            self.histogram("net.delay").record(float(event.delay))
            self.histogram(
                f"net.delay.{event.src}->{event.dst}"
            ).record(float(event.delay))
        elif isinstance(event, MessageDroppedEvent):
            self.counters[f"net.dropped.{event.fate}"] += 1
        elif isinstance(event, DigestStalenessEvent):
            self.histogram("digest_staleness").record(
                float(event.staleness)
            )
            self.histogram(
                f"digest_staleness.{event.source_class}"
            ).record(float(event.staleness))
        elif isinstance(event, OpSpanEvent):
            self.histogram(f"op_ticks.{event.op}").record(
                float(event.end_tick - event.start_tick)
            )
        elif isinstance(event, (WallPinnedEvent, WallUnpinnedEvent)):
            pass  # the per-kind event counter above suffices

    # ------------------------------------------------------------------
    # Block-duration pairing
    # ------------------------------------------------------------------
    def _close_block(self, event: Event) -> None:
        open_episode = self._blocked_since.pop(getattr(event, "txn_id"), None)
        if open_episode is not None:
            self._record_block(open_episode, event.step)

    def _record_block(
        self, open_episode: tuple[Optional[int], str], end_step: Optional[int]
    ) -> None:
        start_step, category = open_episode
        if start_step is None or end_step is None:
            return  # no engine step context; duration unknowable
        self.histogram(f"block_steps.{category}").record(
            float(end_step - start_step)
        )

    def _drain_open_blocks(self, final_step: Optional[int]) -> None:
        for open_episode in self._blocked_since.values():
            self._record_block(open_episode, final_step)
        self._blocked_since.clear()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return histogram

    def report(self) -> dict[str, object]:
        """Counters plus histogram summaries, sorted by name."""
        report: dict[str, object] = {
            name: self.counters[name] for name in sorted(self.counters)
        }
        for name in sorted(self.histograms):
            for key, value in self.histograms[name].summary().items():
                report[f"{name}.{key}"] = value
        return report

    def render(self) -> str:
        """An aligned one-metric-per-line view (CLI output)."""
        report = self.report()
        if not report:
            return "(no events)"
        width = max(len(name) for name in report)
        return "\n".join(
            f"{name.ljust(width)}  {value}" for name, value in report.items()
        )


def _log2_bucket(value: float) -> int:
    """0 for value <= 0, else 1 + floor(log2(value)) — coarse enough
    that a coverage signature is stable across harmless jitter, fine
    enough that a new behaviour regime (a 10x staleness raise, a wall
    wait an order of magnitude longer) registers as novel."""
    if value <= 0:
        return 0
    return max(1, int(value).bit_length())


def coverage_features(report: Mapping[str, object]) -> frozenset[str]:
    """The behaviour signature of one run, as a feature set.

    ``repro explore``'s fault-plan fuzzer keeps a plan on its frontier
    only when the plan's run exhibits a feature no earlier run did
    (AFL-style novelty search).  Features are drawn from a
    :meth:`MetricsRegistry.report` mapping:

    * which abort kinds occurred (``abort.reason.*``),
    * which read protocols served reads (``read.protocol.*``),
    * which message fates dropped traffic (``net.dropped.*``),
    * log2-bucketed p95s of the latency-shaping histograms —
      ``digest_staleness``, ``wall_lag``, ``net.delay`` and every
      ``block_steps.*`` category.
    """
    features: set[str] = set()
    for name, value in report.items():
        if not isinstance(value, (int, float)) or value <= 0:
            continue
        if name.startswith(
            ("abort.reason.", "read.protocol.", "net.dropped.", "net.retransmit.")
        ):
            features.add(name)
        elif name.endswith(".p95"):
            base = name[: -len(".p95")]
            if base in ("digest_staleness", "wall_lag", "net.delay") or (
                base.startswith("block_steps.")
            ):
                features.add(f"{base}.p95~2^{_log2_bucket(float(value))}")
    return frozenset(features)
