"""The happens-before DAG of a distributed-runtime trace.

A dist trace (``repro dist --trace-out``) interleaves four strands of
truth about one run:

* **message events** (``msg_sent`` / ``msg_delivered`` /
  ``msg_dropped``) carrying the causal fields stamped by
  :class:`~repro.dist.net.SimNetwork` — Lamport clock, transaction id,
  ``parent_span`` (the ``seq`` of the delivery that caused the send),
  ``retransmit_of`` and the RPC ``req`` id;
* **operation spans** (``op_span``) marking every *top-level*
  coordinator operation with its start/end network tick — because the
  network only advances inside coordinator pumps, these spans
  partition the run's ticks exactly;
* **node lifecycle** (``node_crashed`` / ``node_recovered``) bracketing
  each down window on the tick axis;
* **digest staleness** samples localising how far each node's remote
  knowledge lagged when gossip landed.

:class:`CausalTrace` reassembles those strands into navigable
structures: per-``seq`` :class:`MessageView` fate records, per-``req``
:class:`RpcExchange` groupings (original attempt, retransmits,
responses), per-span :class:`OpRegion` slices of the event file, down
windows and staleness step points.  File order is preserved everywhere
(``*_index`` fields) because it encodes the coordinator's actual
execution order — the critical-path analyzer
(:mod:`repro.obs.critical_path`) leans on it to decide whether a poll
was answered in place or abandoned.

The module is pure trace-reading: it imports nothing from the dist
runtime and works offline on a JSONL file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.obs.events import (
    AbortedEvent,
    BeginEvent,
    CommittedEvent,
    DigestStalenessEvent,
    Event,
    MessageDeliveredEvent,
    MessageDroppedEvent,
    MessageSentEvent,
    NodeCrashedEvent,
    NodeRecoveredEvent,
    OpSpanEvent,
    WallReleasedEvent,
)

#: The coordinator's endpoint name on the simulated network.
COORD = "coord"


def is_dist_trace(events: Iterable[Event]) -> bool:
    """Does this trace come from the distributed runtime?

    Message events only exist there.  Op spans are *not* a signal: the
    transaction server (:mod:`repro.serve`) emits them too, and its
    traces are monolithic — one scheduler, no network — so they route
    to the ordinary explainer.
    """
    return any(isinstance(e, MessageSentEvent) for e in events)


@dataclass
class MessageView:
    """One message's life, collated from its sent/delivered/dropped
    events (``*_index`` fields are positions in the event file)."""

    seq: int
    src: str = ""
    dst: str = ""
    msg_kind: str = ""
    lamport: int = 0
    txn_id: Optional[int] = None
    parent_span: Optional[int] = None
    retransmit_of: Optional[int] = None
    req: Optional[int] = None
    sent_tick: Optional[int] = None
    sent_index: Optional[int] = None
    delivered_tick: Optional[int] = None
    delivered_index: Optional[int] = None
    delay: Optional[int] = None
    dropped_fate: Optional[str] = None

    @property
    def is_response(self) -> bool:
        return self.msg_kind == "RESP"

    @property
    def delivered(self) -> bool:
        return self.delivered_tick is not None


@dataclass
class RpcExchange:
    """Every message sharing one coordinator RPC ``req`` id.

    ``attempts`` holds the coordinator's request sends in file order —
    the first is the original (``retransmit_of is None``), the rest are
    retransmissions.  ``responses`` holds the node's RESP sends for the
    req (a node replays its cached response to duplicate requests, so
    several can exist; the first *delivered* one is what the waiting
    coordinator consumed).
    """

    req: int
    attempts: list[MessageView] = field(default_factory=list)
    responses: list[MessageView] = field(default_factory=list)

    @property
    def origin(self) -> MessageView:
        return self.attempts[0]

    @property
    def kind(self) -> str:
        return self.origin.msg_kind

    @property
    def dst(self) -> str:
        return self.origin.dst

    @property
    def txn_id(self) -> Optional[int]:
        return self.origin.txn_id

    @property
    def retransmits(self) -> int:
        return len(self.attempts) - 1

    def first_response(self) -> Optional[MessageView]:
        """The first *delivered* response in file order — the one the
        coordinator's pump actually consumed (if it was still waiting).
        """
        delivered = [r for r in self.responses if r.delivered]
        if not delivered:
            return None
        return min(delivered, key=lambda r: r.delivered_index or 0)

    def winning_attempt(self) -> Optional[MessageView]:
        """The request attempt whose delivery produced the first
        response (``response.parent_span`` names it)."""
        response = self.first_response()
        if response is None:
            return None
        for attempt in self.attempts:
            if attempt.seq == response.parent_span:
                return attempt
        return self.attempts[0]


@dataclass
class OpRegion:
    """One top-level coordinator operation and the events emitted
    during it.

    ``op_span`` events are emitted when an operation *returns*, so the
    events of region *k* are exactly those between span *k-1*'s event
    and span *k*'s — the spans partition the file.  ``rpc_reqs`` lists
    the req ids of RPC exchanges *originated* in this region, in
    send order.
    """

    span: OpSpanEvent
    span_index: int
    events: list[Event] = field(default_factory=list)
    rpc_reqs: list[int] = field(default_factory=list)

    @property
    def length(self) -> int:
        return self.span.end_tick - self.span.start_tick


class CausalTrace:
    """A dist trace reassembled into its happens-before structure."""

    def __init__(self, events: Sequence[Event]) -> None:
        self.events: list[Event] = list(events)
        self.messages: dict[int, MessageView] = {}
        self.exchanges: dict[int, RpcExchange] = {}
        self.regions: list[OpRegion] = []
        #: A committed/aborted transaction's op regions, in file order.
        self.regions_by_txn: dict[int, list[OpRegion]] = {}
        #: Closed (and one possibly open) down windows per node name.
        self.down_windows: dict[str, list[tuple[int, Optional[int]]]] = {}
        #: Staleness samples per (node, source_class), in tick order.
        self.staleness_points: dict[
            tuple[str, str], list[tuple[int, int]]
        ] = {}
        self.begins: dict[int, BeginEvent] = {}
        self.commits: dict[int, CommittedEvent] = {}
        self.aborts: dict[int, AbortedEvent] = {}
        self.walls: list[tuple[int, WallReleasedEvent]] = []
        #: The wall leader's node name (dst of POLL requests).
        self.leader: Optional[str] = None
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str) -> "CausalTrace":
        from repro.obs.jsonl import load_trace

        return cls(load_trace(path))

    def _build(self) -> None:
        buffer: list[Event] = []
        for index, event in enumerate(self.events):
            if isinstance(event, OpSpanEvent):
                self._close_region(event, index, buffer)
                buffer = []
                continue
            buffer.append(event)
            if isinstance(event, MessageSentEvent):
                self._on_sent(event, index)
            elif isinstance(event, MessageDeliveredEvent):
                self._on_delivered(event, index)
            elif isinstance(event, MessageDroppedEvent):
                self._on_dropped(event, index)
            elif isinstance(event, NodeCrashedEvent):
                self.down_windows.setdefault(event.node, []).append(
                    (event.ts, None)
                )
            elif isinstance(event, NodeRecoveredEvent):
                windows = self.down_windows.setdefault(event.node, [])
                if windows and windows[-1][1] is None:
                    windows[-1] = (windows[-1][0], event.ts)
                else:  # recovered without a crash event (partial trace)
                    windows.append((0, event.ts))
            elif isinstance(event, DigestStalenessEvent):
                self.staleness_points.setdefault(
                    (event.node, event.source_class), []
                ).append((event.tick, event.staleness))
            elif isinstance(event, BeginEvent):
                self.begins[event.txn_id] = event
            elif isinstance(event, CommittedEvent):
                self.commits[event.txn_id] = event
            elif isinstance(event, AbortedEvent):
                self.aborts[event.txn_id] = event
            elif isinstance(event, WallReleasedEvent):
                self.walls.append((index, event))

    def _view(self, seq: int) -> MessageView:
        view = self.messages.get(seq)
        if view is None:
            view = self.messages[seq] = MessageView(seq=seq)
        return view

    @staticmethod
    def _stamp(view: MessageView, event) -> None:
        view.src = event.src
        view.dst = event.dst
        view.msg_kind = event.msg_kind
        view.lamport = event.lamport
        view.txn_id = event.txn_id
        view.parent_span = event.parent_span
        view.retransmit_of = event.retransmit_of
        view.req = event.req

    def _on_sent(self, event: MessageSentEvent, index: int) -> None:
        view = self._view(event.seq)
        self._stamp(view, event)
        view.sent_tick = event.ts
        view.sent_index = index
        if event.src == COORD and event.msg_kind != "RESP":
            if event.req is not None:
                exchange = self.exchanges.get(event.req)
                if exchange is None:
                    exchange = self.exchanges[event.req] = RpcExchange(
                        req=event.req
                    )
                exchange.attempts.append(view)
                if event.msg_kind == "POLL" and self.leader is None:
                    self.leader = event.dst
        elif event.msg_kind == "RESP" and event.req is not None:
            exchange = self.exchanges.get(event.req)
            if exchange is not None:
                exchange.responses.append(view)

    def _on_delivered(
        self, event: MessageDeliveredEvent, index: int
    ) -> None:
        view = self._view(event.seq)
        self._stamp(view, event)
        view.delivered_tick = event.ts
        view.delivered_index = index
        view.delay = event.delay

    def _on_dropped(self, event: MessageDroppedEvent, index: int) -> None:
        view = self._view(event.seq)
        self._stamp(view, event)
        view.dropped_fate = event.fate

    def _close_region(
        self, span: OpSpanEvent, index: int, buffer: list[Event]
    ) -> None:
        region = OpRegion(span=span, span_index=index, events=buffer)
        for event in buffer:
            if (
                isinstance(event, MessageSentEvent)
                and event.src == COORD
                and event.msg_kind != "RESP"
                and event.retransmit_of is None
                and event.req is not None
            ):
                region.rpc_reqs.append(event.req)
        self.regions.append(region)
        if span.txn_id is not None:
            self.regions_by_txn.setdefault(span.txn_id, []).append(region)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def is_dist(self) -> bool:
        return bool(self.messages) or bool(self.regions)

    def children(self) -> dict[int, list[int]]:
        """Happens-before adjacency: message seq -> seqs of the sends
        its delivery caused (``parent_span`` edges, including
        retransmit edges back to the original attempt)."""
        adjacency: dict[int, list[int]] = {}
        for view in self.messages.values():
            if view.parent_span is not None:
                adjacency.setdefault(view.parent_span, []).append(view.seq)
        return adjacency

    def node_down_overlap(self, node: str, start: int, end: int) -> int:
        """Ticks of ``[start, end)`` during which ``node`` was down.

        An open window (crash without recovery in the trace) extends to
        the end of the run.
        """
        if end <= start:
            return 0
        total = 0
        for w_start, w_end in self.down_windows.get(node, []):
            hi = end if w_end is None else min(end, w_end)
            lo = max(start, w_start)
            if hi > lo:
                total += hi - lo
        return total

    def staleness_affected(self, node: str) -> list[tuple[int, int]]:
        """Merged tick intervals during which ``node``'s view of some
        class was stale.

        Each staleness sample at tick ``T`` with value ``s`` testifies
        about the gossip gap *ending* at ``T``: the interval since the
        previous sample of that class was lagging iff ``s > 0``.  The
        per-class intervals are unioned and merged.
        """
        raw: list[tuple[int, int]] = []
        for (point_node, _cls), points in self.staleness_points.items():
            if point_node != node:
                continue
            previous = 0
            for tick, staleness in points:
                if staleness > 0 and tick > previous:
                    raw.append((previous, tick))
                previous = tick
        if not raw:
            return []
        raw.sort()
        merged = [raw[0]]
        for start, end in raw[1:]:
            if start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Structural invariants of the causal encoding.

        Returns human-readable problems (empty list = sound trace):
        Lamport stamps strictly increase per sender, every delivery or
        drop pairs with a send, deliveries never precede their send on
        the tick axis, and ``parent_span`` / ``retransmit_of`` edges
        point at known messages.
        """
        problems: list[str] = []
        last_lamport: dict[str, int] = {}
        for event in self.events:
            if not isinstance(event, MessageSentEvent):
                continue
            previous = last_lamport.get(event.src, 0)
            if event.lamport <= previous:
                problems.append(
                    f"lamport not increasing at {event.src}: "
                    f"{event.lamport} after {previous} (seq {event.seq})"
                )
            last_lamport[event.src] = event.lamport
        for view in self.messages.values():
            if view.sent_tick is None:
                problems.append(f"seq {view.seq} delivered/dropped "
                                "without a send")
                continue
            if (
                view.delivered_tick is not None
                and view.delivered_tick < view.sent_tick
            ):
                problems.append(
                    f"seq {view.seq} delivered at {view.delivered_tick} "
                    f"before its send at {view.sent_tick}"
                )
            for label, edge in (
                ("parent_span", view.parent_span),
                ("retransmit_of", view.retransmit_of),
            ):
                if edge is not None and edge not in self.messages:
                    problems.append(
                        f"seq {view.seq} {label} -> {edge} "
                        "which is not in the trace"
                    )
        return problems
