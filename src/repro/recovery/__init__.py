"""Write-ahead logging and redo-only crash recovery."""

from repro.recovery.log import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CommitRecord,
    LogRecord,
    WriteAheadLog,
    WriteRecord,
    record_from_line,
    record_to_line,
)
from repro.recovery.manager import (
    LoggingScheduler,
    committed_state,
    recover,
)

__all__ = [
    "WriteAheadLog",
    "LogRecord",
    "BeginRecord",
    "WriteRecord",
    "CommitRecord",
    "AbortRecord",
    "CheckpointRecord",
    "record_to_line",
    "record_from_line",
    "LoggingScheduler",
    "recover",
    "committed_state",
]
