"""Crash recovery: rebuild the committed store from the write-ahead log.

Redo-only recovery over a multi-version store (see
:mod:`repro.recovery.log` for why undo is unnecessary): start from the
last checkpoint snapshot if one exists, then replay the write records
of every transaction with a commit record, stamping versions with their
original write and commit timestamps.  Uncommitted and aborted
transactions simply contribute nothing.

:class:`LoggingScheduler` is the integration point: it wraps any
:class:`~repro.scheduling.BaseScheduler`, mirrors its operations into a
WAL (using the version timestamps the scheduler reports), and exposes
:meth:`LoggingScheduler.checkpoint`.  The wrapper is transparent — it
delegates the full scheduler interface, so the simulator can drive it
like any other scheduler.
"""

from __future__ import annotations

from typing import Optional

from repro.recovery.log import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CommitRecord,
    WriteAheadLog,
    WriteRecord,
)
from repro.scheduling import BaseScheduler, Outcome
from repro.storage.store import MultiVersionStore
from repro.storage.version import Version
from repro.txn.transaction import GranuleId, Transaction


def recover(log: WriteAheadLog, initial_value: object = 0) -> MultiVersionStore:
    """Rebuild a store holding exactly the logged committed state."""
    store = MultiVersionStore(initial_value=initial_value)
    start = log.last_checkpoint_index()
    records = log.records[start:] if start is not None else log.records

    if start is not None:
        checkpoint = records[0]
        assert isinstance(checkpoint, CheckpointRecord)
        for granule, (version_ts, commit_ts, value) in checkpoint.snapshot.items():
            chain = store.chain(granule)
            if version_ts > 0:
                chain.install(
                    Version(
                        granule,
                        version_ts,
                        value,
                        writer_id=-1,  # writer identity not in snapshots
                        committed=True,
                        commit_ts=commit_ts,
                    )
                )

    committed: dict[int, int] = {}
    writes: dict[int, list[WriteRecord]] = {}
    for record in records:
        if isinstance(record, WriteRecord):
            writes.setdefault(record.txn_id, []).append(record)
        elif isinstance(record, CommitRecord):
            committed[record.txn_id] = record.commit_ts

    for txn_id, commit_ts in sorted(
        committed.items(), key=lambda item: item[1]
    ):
        # A transaction may write one granule several times; the last
        # logged value per version wins.
        final: dict[tuple[GranuleId, int], WriteRecord] = {}
        for record in writes.get(txn_id, ()):
            final[(record.granule, record.version_ts)] = record
        for (granule, version_ts), record in final.items():
            chain = store.chain(granule)
            if chain.has_version(version_ts):
                # Idempotent replay (checkpoint overlap): refresh value.
                chain.version_at(version_ts).value = record.value
                continue
            chain.install(
                Version(
                    granule,
                    version_ts,
                    record.value,
                    writer_id=txn_id,
                    committed=True,
                    commit_ts=commit_ts,
                )
            )
    return store


def committed_state(store: MultiVersionStore) -> dict[GranuleId, object]:
    """The latest committed value of every granule (comparison helper)."""
    return {
        chain.granule: chain.latest_committed().value for chain in store
    }


class LoggingScheduler:
    """Transparent WAL wrapper around any scheduler.

    Forwards the whole scheduler interface and appends log records on
    begin / granted write / granted commit / abort.  The log captures
    version timestamps from the inner scheduler's outcomes, so it works
    for write-time-stamped engines (2PL) and initiation-stamped ones
    (TO/MVTO/HDD) alike.
    """

    def __init__(
        self, inner: BaseScheduler, wal: Optional[WriteAheadLog] = None
    ) -> None:
        self.inner = inner
        self.wal = wal if wal is not None else WriteAheadLog()

    # -- delegated attributes used by drivers/simulator ---------------
    @property
    def name(self) -> str:
        return f"{self.inner.name}+wal"

    @property
    def clock(self):
        return self.inner.clock

    @property
    def store(self):
        return self.inner.store

    @property
    def schedule(self):
        return self.inner.schedule

    @property
    def stats(self):
        return self.inner.stats

    @property
    def transactions(self):
        return self.inner.transactions

    def active_transactions(self):
        return self.inner.active_transactions()

    def poll_walls(self):  # present only when the inner scheduler has it
        poll = getattr(self.inner, "poll_walls", None)
        return poll() if poll is not None else None

    @property
    def walls(self):
        return getattr(self.inner, "walls")

    # -- tracing (delegated so the wrapper stays transparent) ----------
    def set_sink(self, sink) -> None:
        self.inner.set_sink(sink)

    @property
    def sink(self):
        return self.inner.sink

    @property
    def current_step(self):
        return self.inner.current_step

    @current_step.setter
    def current_step(self, step) -> None:
        self.inner.current_step = step

    # -- intercepted operations ----------------------------------------
    def begin(self, profile=None, read_only: bool = False) -> Transaction:
        txn = self.inner.begin(profile=profile, read_only=read_only)
        self.wal.append(BeginRecord(txn.txn_id, txn.initiation_ts))
        return txn

    def read(self, txn: Transaction, granule: GranuleId) -> Outcome:
        outcome = self.inner.read(txn, granule)
        if outcome.aborted:
            self.wal.append(AbortRecord(txn.txn_id))
        return outcome

    def write(self, txn: Transaction, granule: GranuleId, value) -> Outcome:
        outcome = self.inner.write(txn, granule, value)
        if outcome.granted:
            assert outcome.version_ts is not None
            self.wal.append(
                WriteRecord(txn.txn_id, granule, outcome.version_ts, value)
            )
        elif outcome.aborted:
            self.wal.append(AbortRecord(txn.txn_id))
        return outcome

    def commit(self, txn: Transaction) -> Outcome:
        outcome = self.inner.commit(txn)
        if outcome.granted:
            assert txn.commit_ts is not None
            self.wal.append(CommitRecord(txn.txn_id, txn.commit_ts))
        elif outcome.aborted:
            self.wal.append(AbortRecord(txn.txn_id))
        return outcome

    def abort(self, txn: Transaction, reason: str) -> None:
        self.inner.abort(txn, reason)
        self.wal.append(AbortRecord(txn.txn_id))

    # -- checkpointing ---------------------------------------------------
    def checkpoint(self) -> CheckpointRecord:
        """Snapshot the committed state into the log (fuzzy checkpoint).

        Transactions active at checkpoint time have write records
        *before* the checkpoint; truncating there would lose them if
        they later commit.  So their begin and write records are
        re-logged after the checkpoint record — the standard fuzzy-
        checkpoint fix — making truncation to the checkpoint safe.
        """
        snapshot = {}
        for chain in self.inner.store:
            version = chain.latest_committed()
            snapshot[chain.granule] = (
                version.ts,
                version.commit_ts if version.commit_ts is not None else 0,
                version.value,
            )
        record = CheckpointRecord(snapshot=snapshot)
        active_ids = {t.txn_id for t in self.inner.active_transactions()}
        carried: list[WriteRecord | BeginRecord] = [
            r
            for r in self.wal.records
            if isinstance(r, (BeginRecord, WriteRecord))
            and r.txn_id in active_ids
        ]
        self.wal.append(record)
        for pending in carried:
            self.wal.append(pending)
        return record
