"""Write-ahead logging for the multi-version store.

The paper's §1.1 requires that a transaction "can be recovered or
backed out as a single unit"; this module supplies the substrate.  The
log is value-based redo logging over versions: because the store is
multi-version and uncommitted versions are simply expunged on abort,
recovery never needs undo — replaying the writes of committed
transactions reconstructs exactly the committed database state
(*redo-only*, "repeating history" on versions).

Records are plain dataclasses with a line-oriented JSON serialisation,
so a log can live in memory (simulated crashes) or be persisted to and
re-read from a real file.  Checkpoints embed a snapshot of the latest
committed version of every granule, allowing the log prefix before the
checkpoint to be truncated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Optional, TextIO, Union

from repro.errors import StorageError
from repro.txn.clock import Timestamp
from repro.txn.transaction import GranuleId

#: JSON-compatible version values (what the workloads write).
Value = Union[int, str, float, bool, None]


@dataclass(frozen=True)
class BeginRecord:
    txn_id: int
    initiation_ts: Timestamp
    kind: str = "begin"


@dataclass(frozen=True)
class WriteRecord:
    txn_id: int
    granule: GranuleId
    version_ts: Timestamp
    value: Value
    kind: str = "write"


@dataclass(frozen=True)
class CommitRecord:
    txn_id: int
    commit_ts: Timestamp
    kind: str = "commit"


@dataclass(frozen=True)
class AbortRecord:
    txn_id: int
    kind: str = "abort"


@dataclass(frozen=True)
class CheckpointRecord:
    """Snapshot of the committed state: granule -> (version_ts, commit_ts,
    value).  Everything before a checkpoint may be truncated."""

    snapshot: dict[GranuleId, tuple[Timestamp, Timestamp, Value]]
    kind: str = "checkpoint"


LogRecord = Union[
    BeginRecord, WriteRecord, CommitRecord, AbortRecord, CheckpointRecord
]

_RECORD_TYPES = {
    "begin": BeginRecord,
    "write": WriteRecord,
    "commit": CommitRecord,
    "abort": AbortRecord,
    "checkpoint": CheckpointRecord,
}


def record_to_line(record: LogRecord) -> str:
    """One JSON line per record (snapshot tuples become lists)."""
    payload = dict(record.__dict__)
    if isinstance(record, CheckpointRecord):
        payload["snapshot"] = {
            granule: list(entry) for granule, entry in record.snapshot.items()
        }
    return json.dumps(payload, sort_keys=True)


def record_from_line(line: str) -> LogRecord:
    payload = json.loads(line)
    kind = payload.pop("kind", None)
    record_type = _RECORD_TYPES.get(kind)
    if record_type is None:
        raise StorageError(f"unknown log record kind {kind!r}")
    if record_type is CheckpointRecord:
        payload["snapshot"] = {
            granule: tuple(entry)
            for granule, entry in payload["snapshot"].items()
        }
    return record_type(**payload)


@dataclass
class WriteAheadLog:
    """An append-only log of :data:`LogRecord`.

    In-memory by default; :meth:`dump` / :meth:`load` round-trip the
    log through a text file.  :meth:`truncate_to_last_checkpoint` drops
    the prefix a checkpoint makes redundant.
    """

    records: list[LogRecord] = field(default_factory=list)

    def append(self, record: LogRecord) -> None:
        self.records.append(record)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def dump(self, stream: TextIO) -> int:
        """Write all records as JSON lines; returns the record count."""
        for record in self.records:
            stream.write(record_to_line(record))
            stream.write("\n")
        return len(self.records)

    @classmethod
    def load(cls, stream: TextIO) -> "WriteAheadLog":
        records: list[LogRecord] = []
        for line in stream:
            line = line.strip()
            if line:
                records.append(record_from_line(line))
        return cls(records=records)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def last_checkpoint_index(self) -> Optional[int]:
        for index in range(len(self.records) - 1, -1, -1):
            if isinstance(self.records[index], CheckpointRecord):
                return index
        return None

    def truncate_to_last_checkpoint(self) -> int:
        """Drop records before the last checkpoint; returns how many."""
        index = self.last_checkpoint_index()
        if index is None or index == 0:
            return 0
        dropped = index
        self.records = self.records[index:]
        return dropped

    def committed_txn_ids(self) -> set[int]:
        return {
            record.txn_id
            for record in self.records
            if isinstance(record, CommitRecord)
        }
