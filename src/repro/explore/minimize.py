"""Delta-debugging a violating case down to a 1-minimal repro.

A violating :class:`~repro.explore.cases.ExploreCase` typically carries
far more perturbation and fault weight than the bug needs — a random
episode deviates at dozens of choice points, a fuzzed plan drags whole
partition windows that never mattered.  The minimizer decomposes the
case into *atoms*:

* one atom per recorded :class:`~repro.explore.perturb.Choice`,
* one atom per fault-plan scalar (latency, jitter, drop, spike —
  removal means "set to zero"),
* one atom per partition window and per crash window,

then runs classic ddmin over the combined list, followed by a greedy
single-atom elimination pass.  The result is **1-minimal**: removing
any single remaining atom loses the violation.  Both passes probe
subsets in a fixed order and the test predicate is a deterministic
replay, so minimization itself is deterministic — the same violating
case always shrinks to the same artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.explore.cases import ExploreCase
from repro.explore.perturb import Choice

#: An atom is ("choice", Choice) or ("plan", kind, payload).
Atom = tuple


def case_atoms(case: ExploreCase) -> list[Atom]:
    """The removable units a case decomposes into, in canonical order."""
    atoms: list[Atom] = [("choice", choice) for choice in case.choices]
    plan = dict(case.plan)
    for scalar in ("latency", "jitter"):
        if int(plan.get(scalar, 0)):
            atoms.append(("plan", scalar, int(plan[scalar])))
    if float(plan.get("drop_rate", 0.0)):
        atoms.append(("plan", "drop_rate", float(plan["drop_rate"])))
    if float(plan.get("spike_rate", 0.0)):
        atoms.append(
            (
                "plan",
                "spike",
                (
                    float(plan["spike_rate"]),
                    int(plan.get("spike_ticks", 0)),
                ),
            )
        )
    for window in plan.get("partitions", []):
        atoms.append(("plan", "partition", tuple(map(_freeze, window))))
    for window in plan.get("crashes", []):
        atoms.append(("plan", "crash", tuple(window)))
    return atoms


def _freeze(value):
    return tuple(value) if isinstance(value, list) else value


def rebuild_case(case: ExploreCase, atoms: Sequence[Atom]) -> ExploreCase:
    """The case an atom subset denotes (absent scalar atoms mean 0)."""
    from dataclasses import replace

    choices = tuple(
        atom[1] for atom in atoms if atom[0] == "choice"
    )
    plan: dict[str, object] = {}
    partitions: list = []
    crashes: list = []
    for atom in atoms:
        if atom[0] != "plan":
            continue
        kind, payload = atom[1], atom[2]
        if kind in ("latency", "jitter", "drop_rate"):
            plan[kind] = payload
        elif kind == "spike":
            plan["spike_rate"], plan["spike_ticks"] = payload
        elif kind == "partition":
            start, end, left, right = payload
            partitions.append([start, end, list(left), list(right)])
        else:
            crashes.append(list(payload))
    if partitions:
        plan["partitions"] = partitions
    if crashes:
        plan["crashes"] = crashes
    return replace(case, choices=choices, plan=plan)


@dataclass
class MinimizeResult:
    case: ExploreCase
    tests: int
    removed: int


def minimize(
    case: ExploreCase,
    is_violating: Callable[[ExploreCase], bool],
    max_tests: int = 400,
) -> MinimizeResult:
    """Shrink ``case`` while ``is_violating`` stays true.

    ``is_violating`` must already be True for ``case`` itself (the
    caller found the violation; we only shrink it).  ``max_tests``
    bounds the number of candidate executions — when exhausted, the
    smallest violating case found so far is returned (it may then not
    be provably 1-minimal, but it is never larger than the input).
    """
    atoms = case_atoms(case)
    tests = 0

    def violates(subset: Sequence[Atom]) -> bool:
        nonlocal tests
        tests += 1
        return is_violating(rebuild_case(case, subset))

    # -- ddmin ---------------------------------------------------------
    current = list(atoms)
    granularity = 2
    while len(current) >= 2 and tests < max_tests:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current) and tests < max_tests:
            candidate = current[:start] + current[start + chunk :]
            if candidate and not violates(candidate):
                start += chunk
                continue
            if not candidate and not violates(candidate):
                start += chunk
                continue
            current = candidate
            granularity = max(granularity - 1, 2)
            reduced = True
            start = 0
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)

    # -- greedy 1-minimality pass --------------------------------------
    # ddmin guarantees chunk-minimality at final granularity; one more
    # sweep removing single atoms until a fixpoint guarantees removing
    # *any* single atom loses the violation.
    changed = True
    while changed and tests < max_tests:
        changed = False
        for position in range(len(current)):
            candidate = current[:position] + current[position + 1 :]
            if violates(candidate):
                current = candidate
                changed = True
                break

    return MinimizeResult(
        case=rebuild_case(case, current),
        tests=tests,
        removed=len(atoms) - len(current),
    )
