"""The budgeted search loop: baseline, random, neighborhood, fuzz.

One :func:`explore` call hunts one target (a case template) within an
:class:`ExploreBudget`:

1. **Baseline** — run the unperturbed case through every oracle.  A
   badly broken mutant fails right here; the run also records the
   complete menu of choice points for neighborhood search.
2. **Random episodes** — seeded :class:`RandomPerturber` runs at a low
   deviation rate; each episode's nonzero decisions become a replayable
   case checked through the oracles.
3. **Neighborhood** — systematic single-deviation probes of the
   baseline's recorded choice points (the smallest possible schedule
   changes, spread across the run by stride).
4. **Fault fuzzing** — for eager distributed targets, plan mutations
   inside the declared :class:`FaultBudget`, frontier-prioritised by
   coverage novelty.

The first violation (or every violation, with ``stop_on_first=False``)
is verified by deterministic replay of its recorded decision trace and
then shrunk with :func:`repro.explore.minimize.minimize` to a 1-minimal
case, using "same violation kind still present" as the shrink
predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.explore.cases import ExploreCase, RunReport, run_case
from repro.explore.fuzz import CoverageMap, FaultBudget, PlanFuzzer
from repro.explore.minimize import MinimizeResult, minimize
from repro.explore.oracles import Violation, check_case
from repro.explore.perturb import (
    RandomPerturber,
    ZeroPerturber,
    neighborhood,
)
from repro.obs.metrics import coverage_features


@dataclass(frozen=True)
class ExploreBudget:
    """How much searching one target gets."""

    episodes: int = 30
    neighborhood: int = 20
    fuzz: int = 0
    rate: float = 0.05
    minimize_tests: int = 300
    stop_on_first: bool = True
    fault_budget: FaultBudget = field(default_factory=FaultBudget)


@dataclass
class Finding:
    """One verified, minimized violation."""

    case: ExploreCase
    violations: list[Violation]
    minimized: ExploreCase
    #: The target violations as they present on the *minimized* case —
    #: what a saved artifact records.
    minimized_violations: list[Violation]
    minimize_tests: int
    report: RunReport
    phase: str


@dataclass
class ExploreResult:
    target: str
    runs: int = 0
    findings: list[Finding] = field(default_factory=list)
    coverage: int = 0
    replay_failures: list[str] = field(default_factory=list)

    @property
    def caught(self) -> bool:
        return bool(self.findings)


def _target_label(case: ExploreCase) -> str:
    if case.mutant:
        return case.mutant
    suffix = "" if not case.dist else (
        "-dist-batched" if case.batch_gossip else "-dist"
    )
    return f"real-{case.scheduler}{suffix}"


def explore(
    template: ExploreCase,
    budget: ExploreBudget,
    base_seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
) -> ExploreResult:
    result = ExploreResult(target=_target_label(template))
    coverage = CoverageMap()

    def note(message: str) -> None:
        if log is not None:
            log(f"[{result.target}] {message}")

    def probe(case: ExploreCase, report: RunReport, phase: str) -> bool:
        """Oracle-check one executed case; True to stop the search."""
        # Live-perturbed runs execute the *template* while the recorded
        # decisions land in ``case`` afterwards; the oracles must see
        # the choice-ful case (batched≡eager rebuilds its eager
        # counterpart from it — comparing a perturbed batched run
        # against an unperturbed eager run is a spurious violation).
        report.case = case
        result.runs += 1
        coverage.observe(coverage_features(report.metrics))
        violations = check_case(report)
        if not violations:
            return False
        # Verify by deterministic replay of the recorded trace before
        # claiming a catch: if the replay loses the violation, the
        # decision stream failed to capture the run — an explorer bug
        # worth surfacing loudly, never silently.
        replay_report = run_case(case)
        replay_kinds = {v.kind for v in check_case(replay_report)}
        kinds = {v.kind for v in violations}
        if not kinds & replay_kinds:
            result.replay_failures.append(
                f"{phase}: {sorted(kinds)} not reproduced by replay"
            )
            note(f"replay failed to reproduce {sorted(kinds)}")
            return False

        def still_violates(candidate: ExploreCase) -> bool:
            return bool(
                kinds & {v.kind for v in check_case(run_case(candidate))}
            )

        shrunk: MinimizeResult = minimize(
            case, still_violates, max_tests=budget.minimize_tests
        )
        result.runs += shrunk.tests
        minimized_report = run_case(shrunk.case)
        minimized_violations = [
            v for v in check_case(minimized_report) if v.kind in kinds
        ]
        result.findings.append(
            Finding(
                case=case,
                violations=list(violations),
                minimized=shrunk.case,
                minimized_violations=minimized_violations,
                minimize_tests=shrunk.tests,
                report=minimized_report,
                phase=phase,
            )
        )
        note(
            f"violation {sorted(kinds)} found in phase {phase}; "
            f"minimized to {len(shrunk.case.choices)} choices + "
            f"{len(dict(shrunk.case.plan))} plan keys "
            f"in {shrunk.tests} tests"
        )
        return budget.stop_on_first or not minimized_violations
        # (minimized_violations is non-empty whenever still_violates
        # held at the end of shrinking, which minimize guarantees.)

    # -- phase 1: baseline --------------------------------------------
    zero = ZeroPerturber()
    baseline = run_case(template, perturber=zero)
    if probe(template, baseline, "baseline"):
        result.coverage = len(coverage.features)
        return result

    # -- phase 2: random episodes -------------------------------------
    for episode in range(budget.episodes):
        perturber = RandomPerturber(
            seed=base_seed * 100_003 + episode,
            rate=budget.rate,
            points=template.perturb_points,
        )
        report = run_case(template, perturber=perturber)
        case = template.with_choices(perturber.recorded)
        if probe(case, report, f"random-{episode}"):
            result.coverage = len(coverage.features)
            return result

    # -- phase 3: neighborhood ----------------------------------------
    addresses = sum(
        1
        for key, n in zero.seen.items()
        if key[0] in template.perturb_points and n > 1
    )
    stride = max(1, addresses // max(1, budget.neighborhood))
    probes = 0
    for choices in neighborhood(
        zero.seen, points=template.perturb_points, stride=stride
    ):
        if probes >= budget.neighborhood:
            break
        probes += 1
        case = template.with_choices(choices)
        report = run_case(case)
        if probe(case, report, f"neighborhood-{probes}"):
            result.coverage = len(coverage.features)
            return result

    # -- phase 4: fault fuzzing (eager dist targets only) -------------
    if budget.fuzz and template.dist and not template.batch_gossip:
        from repro.dist.node import node_name
        from repro.sweep.spec import build_workload

        nodes = [
            node_name(segment)
            for segment in build_workload(
                template.workload
            ).partition.segments
        ]
        fuzzer = PlanFuzzer(
            budget.fault_budget,
            seed=base_seed * 7 + 13,
            nodes=nodes,
            base=template.plan,
        )
        for episode in range(budget.fuzz):
            plan = fuzzer.propose()
            fuzz_template = replace(template, plan=plan)
            perturber = RandomPerturber(
                seed=base_seed * 90_001 + episode,
                rate=budget.rate,
                points=fuzz_template.perturb_points,
            )
            report = run_case(fuzz_template, perturber=perturber)
            case = fuzz_template.with_choices(perturber.recorded)
            signature = coverage_features(report.metrics)
            if not signature <= coverage.features:
                fuzzer.accept(plan)  # novel behaviour: keep this lineage
            if probe(case, report, f"fuzz-{episode}"):
                result.coverage = len(coverage.features)
                return result

    result.coverage = len(coverage.features)
    return result
