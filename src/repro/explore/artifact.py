"""Canonical JSON repro artifacts and their byte-identical replay.

A minimized violation is only worth anything if it still reproduces on
another machine, another day, another worker count.  The artifact is a
single JSON document holding the (shrunk) case, the violation(s) it
demonstrates, and the SHA-256 digests of the recording run's canonical
outputs (schedule lines, message-log lines).  ``repro explore
--replay artifact.json`` re-executes the case and compares those
digests byte-for-byte — exit 0 on an exact reproduction, the
*operational-error* exit code when the artifact no longer reproduces
(that is a bug in the engine or an intervening semantic change, not a
newly found violation).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.explore.cases import ExploreCase, RunReport, run_case
from repro.explore.oracles import Violation


def _digest(lines: Sequence[str]) -> str:
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def artifact_dict(
    report: RunReport, violations: Sequence[Violation]
) -> dict[str, object]:
    return {
        "case": report.case.to_dict(),
        "violations": [v.to_dict() for v in violations],
        "schedule_sha256": _digest(report.schedule_lines),
        "message_log_sha256": _digest(report.message_lines),
        "schedule_steps": len(report.schedule_lines),
        "messages": len(report.message_lines),
    }


def save_artifact(
    path: str, report: RunReport, violations: Sequence[Violation]
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            artifact_dict(report, violations),
            handle,
            sort_keys=True,
            indent=2,
        )
        handle.write("\n")


def load_artifact(path: str) -> dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "case" not in data:
        raise ReproError(f"{path}: not an explore artifact (no case)")
    return data


@dataclass
class ReplayOutcome:
    ok: bool
    detail: str
    report: Optional[RunReport] = None
    violations: Sequence[Violation] = ()


def replay_artifact(data: Mapping[str, object]) -> ReplayOutcome:
    """Re-execute an artifact's case and compare canonical outputs."""
    from repro.explore.oracles import check_case

    case = ExploreCase.from_dict(data["case"])
    report = run_case(case)
    schedule_digest = _digest(report.schedule_lines)
    message_digest = _digest(report.message_lines)
    if schedule_digest != data.get("schedule_sha256"):
        return ReplayOutcome(
            False,
            "schedule diverged from the recorded run "
            f"({len(report.schedule_lines)} steps vs recorded "
            f"{data.get('schedule_steps')})",
            report,
        )
    if message_digest != data.get("message_log_sha256"):
        return ReplayOutcome(
            False, "message log diverged from the recorded run", report
        )
    violations = check_case(report)
    recorded = {v["kind"] for v in data.get("violations", [])}
    found = {v.kind for v in violations}
    if recorded and not recorded & found:
        return ReplayOutcome(
            False,
            f"run reproduced byte-identically but the violation did not "
            f"(recorded {sorted(recorded)}, found {sorted(found) or 'none'})",
            report,
            violations,
        )
    return ReplayOutcome(
        True,
        f"byte-identical replay; violations reproduced: "
        f"{sorted(found) or 'none recorded'}",
        report,
        violations,
    )
