"""One explored run as pure data, and the machinery to execute it.

An :class:`ExploreCase` is everything needed to reproduce a run: the
target (a real scheduler or a corpus mutant), the workload and fault
plan, the seeds, and the recorded perturbation choices.  It is
JSON-round-trippable and canonically hashable — the minimizer shrinks
cases, the artifact layer serializes them, and ``repro explore
--replay`` re-executes them byte-identically on any worker count.

``run_case`` executes a case and returns a :class:`RunReport` carrying
both the byte-comparable outputs (schedule lines, message-log lines)
and the richer objects the oracle layer inspects (the scheduler, the
released walls, the captured event trace, the metrics report).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.explore.perturb import (
    Choice,
    Perturber,
    ReplayPerturber,
)
from repro.obs import MemorySink, MetricsRegistry, TeeSink
from repro.sim.engine import Simulator
from repro.sweep.spec import (
    DIST_SCHEDULERS,
    SCHEDULER_FACTORIES,
    build_workload,
)

#: Bump when run semantics change and old artifacts stop replaying.
ARTIFACT_VERSION = 1


def plan_to_dict(plan) -> dict[str, object]:
    """A :class:`~repro.dist.net.FaultPlan` as canonical pure data."""
    return {
        "latency": plan.latency,
        "jitter": plan.jitter,
        "drop_rate": plan.drop_rate,
        "spike_rate": plan.spike_rate,
        "spike_ticks": plan.spike_ticks,
        "partitions": [
            [w.start, w.end, sorted(w.left), sorted(w.right)]
            for w in plan.partitions
        ],
        "crashes": [[c.node, c.at, c.recover] for c in plan.crashes],
    }


def plan_from_dict(data: Mapping[str, object]):
    from repro.dist.net import Crash, FaultPlan, Partition

    return FaultPlan(
        latency=int(data.get("latency", 0)),
        jitter=int(data.get("jitter", 0)),
        drop_rate=float(data.get("drop_rate", 0.0)),
        spike_rate=float(data.get("spike_rate", 0.0)),
        spike_ticks=int(data.get("spike_ticks", 0)),
        partitions=tuple(
            Partition(
                int(start), int(end), frozenset(left), frozenset(right)
            )
            for start, end, left, right in data.get("partitions", [])
        ),
        crashes=tuple(
            Crash(str(node), int(at), int(recover))
            for node, at, recover in data.get("crashes", [])
        ),
    )


@dataclass(frozen=True)
class ExploreCase:
    """Pure data: one run the explorer wants (re-)executed.

    ``mutant`` names a corpus entry whose broken scheduler/runtime
    replaces the real one; ``None`` targets the genuine article.
    ``choices`` is the recorded perturbation trace (empty = baseline
    schedule).  ``plan`` is the serialized fault plan (dist only).
    """

    scheduler: str = "hdd"
    dist: bool = False
    batch_gossip: bool = False
    mutant: Optional[str] = None
    workload: Mapping[str, object] = field(
        default_factory=lambda: {"schema": "inventory"}
    )
    clients: int = 8
    seed: int = 0
    net_seed: int = 0
    target_commits: Optional[int] = 60
    max_steps: int = 30_000
    wall_interval: int = 25
    heartbeat: int = 5
    plan: Mapping[str, object] = field(default_factory=dict)
    choices: tuple[Choice, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "version": ARTIFACT_VERSION,
            "scheduler": self.scheduler,
            "dist": self.dist,
            "batch_gossip": self.batch_gossip,
            "mutant": self.mutant,
            "workload": dict(self.workload),
            "clients": self.clients,
            "seed": self.seed,
            "net_seed": self.net_seed,
            "target_commits": self.target_commits,
            "max_steps": self.max_steps,
            "wall_interval": self.wall_interval,
            "heartbeat": self.heartbeat,
            "plan": dict(self.plan),
            "choices": [choice.to_list() for choice in self.choices],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExploreCase":
        data = dict(data)
        data.pop("version", None)
        data["workload"] = dict(data.get("workload", {}))
        data["plan"] = dict(data.get("plan", {}))
        data["choices"] = tuple(
            Choice.from_list(item) for item in data.get("choices", [])
        )
        return cls(**data)

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def with_choices(
        self, choices: Sequence[Choice]
    ) -> "ExploreCase":
        return replace(self, choices=tuple(choices))

    @property
    def sim_level_only(self) -> bool:
        """Whether net-level perturbation points are off-limits.

        Batched-ideal runs ride the POLL governor, whose idle-skip
        contract assumes the network's baseline delivery order;
        reordering deliveries across links can stall it legally — a
        false positive on a correct scheduler — so those targets are
        explored at the simulator level only.
        """
        return self.batch_gossip and not dict(self.plan)

    @property
    def perturb_points(self) -> tuple[str, ...]:
        if not self.dist or self.sim_level_only:
            return ("ready", "arrival")
        return ("ready", "arrival", "deliver", "rto")


@dataclass
class RunReport:
    """Everything one executed case produced.

    ``schedule_lines`` and ``message_lines`` are the byte-comparable
    canonical outputs (the determinism and replay checks compare them
    verbatim); the object fields feed the oracle layer.
    """

    case: ExploreCase
    result: Optional[object] = None
    scheduler: Optional[object] = None
    schedule_lines: tuple[str, ...] = ()
    message_lines: tuple[str, ...] = ()
    metrics: Mapping[str, object] = field(default_factory=dict)
    events: Sequence[object] = ()
    error: Optional[str] = None
    perturber: Optional[Perturber] = None

    @property
    def walls(self):
        walls = getattr(self.scheduler, "walls", None)
        return getattr(walls, "released", []) if walls else []


def _build_scheduler(case: ExploreCase, partition):
    """The (possibly mutated) scheduler/runtime a case targets."""
    if case.mutant is not None:
        from repro.explore.corpus import corpus_entry

        return corpus_entry(case.mutant).build(case, partition)
    return build_real_scheduler(case, partition)


def build_real_scheduler(
    case: ExploreCase, partition, runtime_class=None
):
    """The unmutated target; ``runtime_class`` lets corpus entries swap
    in a broken :class:`~repro.dist.runtime.DistributedRuntime`."""
    if not case.dist:
        return SCHEDULER_FACTORIES[case.scheduler](partition)
    from repro.dist.runtime import DistributedRuntime

    if case.scheduler not in DIST_SCHEDULERS:
        raise ReproError(
            f"scheduler {case.scheduler!r} has no distributed runtime"
        )
    cls = runtime_class if runtime_class is not None else DistributedRuntime
    return cls(
        partition,
        mode=case.scheduler,
        plan=plan_from_dict(case.plan),
        seed=case.net_seed,
        wall_interval=case.wall_interval,
        heartbeat=case.heartbeat,
        batch_gossip=case.batch_gossip,
    )


def run_case(
    case: ExploreCase, perturber: Optional[Perturber] = None
) -> RunReport:
    """Execute a case and collect everything the oracles need.

    ``perturber`` defaults to replaying the case's recorded choices;
    the explore engine passes live perturbers (random / neighborhood)
    instead.  One perturber serves both the simulator and the network —
    the choice points are disjoint, so the call counters never clash.

    Engine exceptions are *data*, not failures: a mutant that corrupts
    internal state typically dies in a stall or a ``KeyError`` long
    before producing a non-serializable schedule, and the oracle layer
    turns ``report.error`` into an ``engine-error`` violation (for
    mutants) or a real bug report (for genuine targets).
    """
    if perturber is None:
        perturber = ReplayPerturber(case.choices)
    workload = build_workload(case.workload)
    scheduler = _build_scheduler(case, workload.partition)
    registry = MetricsRegistry()
    sink: object = registry
    events: Sequence[object] = ()
    memory: Optional[MemorySink] = None
    if case.dist:
        # The critical-path exactness oracle replays the full event DAG.
        memory = MemorySink()
        sink = TeeSink([memory, registry])
        scheduler.network.perturb = perturber
    simulator = Simulator(
        scheduler,
        workload,
        clients=case.clients,
        seed=case.seed,
        max_steps=case.max_steps,
        target_commits=case.target_commits,
        audit=False,
        trace_sink=sink,
        perturb=perturber,
    )
    result = None
    error = None
    try:
        result = simulator.run()
    except Exception as exc:  # noqa: BLE001 - engine errors are data
        error = f"{type(exc).__name__}: {exc}"
    if memory is not None:
        events = list(memory.events)
    schedule = getattr(scheduler, "schedule", None)
    schedule_lines = (
        tuple(str(step) for step in schedule) if schedule is not None else ()
    )
    network = getattr(scheduler, "network", None)
    message_lines = (
        tuple(network.log_lines()) if network is not None else ()
    )
    return RunReport(
        case=case,
        result=result,
        scheduler=scheduler,
        schedule_lines=schedule_lines,
        message_lines=message_lines,
        metrics=registry.report(),
        events=events,
        error=error,
        perturber=perturber,
    )
