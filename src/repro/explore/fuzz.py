"""Budgeted :class:`FaultPlan` fuzzing with coverage-novelty search.

Random schedules find interleaving bugs; *fault* bugs (stale digests,
lost incarnation state, retransmit races) additionally need the right
weather.  The fuzzer mutates one plan component per step — latency,
jitter, drop/spike rates, a partition window, a crash window — inside a
declared :class:`FaultBudget`, validates the result exactly the way the
CLI would (so invalid combinations surface as
:class:`~repro.errors.ConfigError` and are simply retried), and keeps
the plans whose runs exhibit *novel* coverage features (see
:func:`repro.obs.metrics.coverage_features`) on a frontier queue,
AFL-style: a plan that made the system do something no earlier plan did
is the best starting point for the next mutation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.errors import ConfigError
from repro.explore.cases import plan_from_dict


@dataclass(frozen=True)
class FaultBudget:
    """The box the fuzzer may search inside.

    ``horizon`` bounds every partition/crash window to the ticks a run
    can actually reach (windows past the horizon are dead weight the
    minimizer would strip anyway).
    """

    max_latency: int = 4
    max_jitter: int = 4
    max_drop_rate: float = 0.05
    max_spike_rate: float = 0.1
    max_spike_ticks: int = 6
    max_partitions: int = 1
    max_crashes: int = 2
    max_window: int = 80
    horizon: int = 600


class CoverageMap:
    """Which behaviour features any run has ever exhibited."""

    def __init__(self) -> None:
        self.features: set[str] = set()
        self.signatures: set[frozenset[str]] = set()

    def observe(self, signature: frozenset[str]) -> bool:
        """Record a run's signature; True when it brought any feature
        the map had never seen (the novelty signal)."""
        novel = not signature <= self.features
        self.features |= signature
        self.signatures.add(signature)
        return novel


class PlanFuzzer:
    """Mutate fault plans inside a budget, frontier-first.

    ``propose()`` pops the most recent novel plan off the frontier
    (falling back to the base plan) and applies one random mutation;
    plans whose runs turn out novel are pushed back via ``accept()``.
    Every proposal is validated through the real ``FaultPlan``
    constructor plus ``validate_horizon`` — a mutation that lands on an
    invalid combination (overlapping crash windows, a window past the
    horizon) is discarded and another is drawn, up to a small retry
    bound.
    """

    #: Mutation kinds, each one plan component.
    _KINDS = (
        "latency",
        "jitter",
        "drop_rate",
        "spike",
        "partition",
        "crash",
    )

    def __init__(
        self,
        budget: FaultBudget,
        seed: int,
        nodes: Iterable[str],
        base: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.budget = budget
        self.rng = random.Random(seed)
        self.nodes = sorted(nodes)
        self.base: dict[str, object] = dict(base or {})
        self.frontier: list[dict[str, object]] = []
        self.proposed = 0
        self.rejected = 0

    def accept(self, plan: Mapping[str, object]) -> None:
        self.frontier.append(dict(plan))
        # A bounded frontier keeps the search from ratholing on one
        # early-novel lineage.
        if len(self.frontier) > 16:
            self.frontier.pop(0)

    def propose(self) -> dict[str, object]:
        parent = (
            self.frontier[-1] if self.frontier else self.base
        )
        for _ in range(8):
            candidate = self._mutate(dict(parent))
            self.proposed += 1
            try:
                plan = plan_from_dict(candidate)
                plan.validate_horizon(self.budget.horizon)
            except ConfigError:
                self.rejected += 1
                continue
            return candidate
        return dict(parent)

    # ------------------------------------------------------------------
    # Mutation operators
    # ------------------------------------------------------------------
    def _mutate(self, plan: dict[str, object]) -> dict[str, object]:
        kind = self.rng.choice(self._KINDS)
        budget = self.budget
        if kind == "latency":
            plan["latency"] = self.rng.randint(0, budget.max_latency)
        elif kind == "jitter":
            plan["jitter"] = self.rng.randint(0, budget.max_jitter)
        elif kind == "drop_rate":
            plan["drop_rate"] = round(
                self.rng.random() * budget.max_drop_rate, 4
            )
        elif kind == "spike":
            plan["spike_rate"] = round(
                self.rng.random() * budget.max_spike_rate, 4
            )
            plan["spike_ticks"] = self.rng.randint(
                1, max(1, budget.max_spike_ticks)
            )
        elif kind == "partition":
            plan["partitions"] = self._partitions(plan)
        else:
            plan["crashes"] = self._crashes(plan)
        return plan

    def _window(self) -> tuple[int, int]:
        start = self.rng.randint(0, max(0, self.budget.horizon - 2))
        length = self.rng.randint(
            1, max(1, min(self.budget.max_window, self.budget.horizon - start))
        )
        return start, start + length

    def _partitions(self, plan: dict[str, object]) -> list:
        existing = list(plan.get("partitions", []))
        if existing and (
            len(existing) >= self.budget.max_partitions
            or self.rng.random() < 0.3
        ):
            existing.pop(self.rng.randrange(len(existing)))
            return existing
        if len(self.nodes) < 2 or self.budget.max_partitions < 1:
            return existing
        start, end = self._window()
        split = self.rng.randint(1, len(self.nodes) - 1)
        members = list(self.nodes)
        self.rng.shuffle(members)
        existing.append(
            [start, end, sorted(members[:split]), sorted(members[split:])]
        )
        return existing[-self.budget.max_partitions :]

    def _crashes(self, plan: dict[str, object]) -> list:
        existing = list(plan.get("crashes", []))
        if existing and (
            len(existing) >= self.budget.max_crashes
            or self.rng.random() < 0.3
        ):
            existing.pop(self.rng.randrange(len(existing)))
            return existing
        if not self.nodes or self.budget.max_crashes < 1:
            return existing
        start, end = self._window()
        existing.append([self.rng.choice(self.nodes), start, end])
        return existing[-self.budget.max_crashes :]
