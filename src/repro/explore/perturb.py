"""The perturbation decision stream behind every explored schedule.

A hooked component (simulator ready-set pick, closed/open-loop arrival
order, network same-tick delivery order, coordinator retransmit slip)
asks its perturber ``choose(point, n)`` — "here are ``n`` legal
candidates at choice point *point*; which one?" — and uses the answer
as an index.  Two invariants make the whole explore subsystem sound:

1. **Index 0 is the baseline.**  Every hook orders its candidates so
   that candidate 0 is exactly what the disarmed code would have done.
   An all-zeros perturber therefore reproduces the unhooked run
   byte-identically, which is both the disarmed-identity test and the
   reason a minimized artifact with an empty choice list replays the
   plain run.

2. **Choices are positional.**  The ``i``-th call at a given point is
   addressed as ``(point, i)``; a :class:`ReplayPerturber` maps those
   addresses back to picks.  Because a nonzero pick changes the
   schedule *after* the call that made it, the prefix of calls up to
   and including any recorded choice is identical between the
   recording run and the replay run — so replay is exact by induction.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Mapping, Sequence

#: The named choice points the hooks expose.
POINTS = ("ready", "arrival", "deliver", "rto")


class Choice:
    """One recorded nonzero decision: at call ``index`` of ``point``,
    candidate ``pick`` was chosen instead of the baseline 0."""

    __slots__ = ("point", "index", "pick")

    def __init__(self, point: str, index: int, pick: int) -> None:
        self.point = point
        self.index = index
        self.pick = pick

    def key(self) -> tuple[str, int]:
        return (self.point, self.index)

    def to_list(self) -> list:
        return [self.point, self.index, self.pick]

    @classmethod
    def from_list(cls, data: Sequence) -> "Choice":
        point, index, pick = data
        return cls(str(point), int(index), int(pick))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Choice)
            and self.point == other.point
            and self.index == other.index
            and self.pick == other.pick
        )

    def __hash__(self) -> int:
        return hash((self.point, self.index, self.pick))

    def __repr__(self) -> str:
        return f"Choice({self.point!r}, {self.index}, {self.pick})"


class Perturber:
    """Base perturber: counts calls, records nonzero decisions.

    Subclasses override :meth:`_pick`; the base class keeps the
    per-point call counters, the per-address candidate counts (used by
    :func:`neighborhood` to know how far a pick can legally reach), and
    the ``recorded`` list of nonzero choices that becomes the case's
    decision trace.
    """

    def __init__(self) -> None:
        self.calls: dict[str, int] = {}
        #: Candidate count seen at each (point, index) address.
        self.seen: dict[tuple[str, int], int] = {}
        #: Every nonzero decision, in call order.
        self.recorded: list[Choice] = []

    def choose(self, point: str, n: int) -> int:
        index = self.calls.get(point, 0)
        self.calls[point] = index + 1
        self.seen[(point, index)] = n
        if n <= 1:
            return 0
        pick = self._pick(point, index, n)
        if pick:
            self.recorded.append(Choice(point, index, min(pick, n - 1)))
        return pick

    def _pick(self, point: str, index: int, n: int) -> int:
        return 0


class ZeroPerturber(Perturber):
    """Always the baseline — armed hooks, unchanged schedule.

    Running with a ``ZeroPerturber`` and with ``perturb=None`` must be
    byte-identical; the disarmed-identity tests assert exactly that.
    It is also the recording run for :func:`neighborhood` search: its
    ``seen`` map is the complete menu of legal single deviations.
    """


class RandomPerturber(Perturber):
    """Seeded random search: deviate at each choice point with
    probability ``rate``, picking uniformly among the non-baseline
    candidates.  The rate is deliberately small — one schedule with a
    handful of deviations explores further than noise at every step,
    because heavy perturbation mostly starves clients rather than
    creating meaningful races.

    ``points`` restricts deviations to a subset of choice points —
    batched-ideal targets are explored at the simulator level only
    (``("ready", "arrival")``), because cross-link delivery reorder can
    legally stall the POLL governor's idle-skip contract and would read
    as a false positive on a correct scheduler.

    The rng is consumed identically whether or not a point is eligible,
    so restricting points never shifts the random decisions made at the
    points that remain."""

    def __init__(
        self,
        seed: int,
        rate: float = 0.05,
        points: Sequence[str] = POINTS,
    ) -> None:
        super().__init__()
        self.rng = random.Random(seed)
        self.rate = rate
        self.points = frozenset(points)

    def _pick(self, point: str, index: int, n: int) -> int:
        deviate = self.rng.random() < self.rate
        if not deviate:
            return 0
        pick = self.rng.randrange(1, n)
        return pick if point in self.points else 0


class ReplayPerturber(Perturber):
    """Replay a recorded decision trace; every unlisted address is the
    baseline.  Picks are clamped to the live candidate count — a
    clamped (hence divergent) replay can only happen while the
    minimizer is probing subsets, never when replaying a trace the
    recording run itself produced."""

    def __init__(self, choices: Iterable[Choice]) -> None:
        super().__init__()
        self._table: dict[tuple[str, int], int] = {
            choice.key(): choice.pick for choice in choices
        }

    def _pick(self, point: str, index: int, n: int) -> int:
        pick = self._table.get((point, index), 0)
        return min(pick, n - 1)


def neighborhood(
    seen: Mapping[tuple[str, int], int],
    points: Sequence[str] = POINTS,
    stride: int = 1,
) -> Iterator[tuple[Choice]]:
    """Systematic single-deviation neighbourhood of a recorded baseline.

    ``seen`` is a baseline run's ``(point, index) -> n`` map.  Yields
    one single-``Choice`` tuple per legal deviation, in deterministic
    address order; ``stride`` subsamples addresses when the baseline
    has more choice points than the search budget can visit.
    """
    addresses = sorted(
        (key for key in seen if key[0] in points and seen[key] > 1),
    )
    for position, (point, index) in enumerate(addresses):
        if position % stride:
            continue
        for pick in range(1, seen[(point, index)]):
            yield (Choice(point, index, pick),)
