"""Schedule-space exploration: find the interleaving that breaks you.

The determinism tripwires elsewhere in this repo prove *replay* — the
same seed gives the same bytes — but not *coverage*: a handful of seeds
and hand-written fault plans only ever visit a sliver of the schedule
space.  This package is the hunting side of that story (DESIGN.md §15):

* :mod:`repro.explore.perturb` — the perturbation decision stream.  The
  simulator, network and runtime expose named choice points (ready-set
  pick, arrival order, same-tick delivery order, retransmit slip);
  a :class:`Perturber` answers each with a candidate index where index
  0 is always the baseline, so disarmed ≡ all-zeros ≡ byte-identical.
* :mod:`repro.explore.cases` — :class:`ExploreCase`, the pure-data
  description of one explored run (target, workload, fault plan,
  recorded choices), and ``run_case`` which executes it.
* :mod:`repro.explore.oracles` — what "broken" means: serializability,
  digest conservatism, batched≡eager equivalence, critical-path
  exactness, and plain engine errors.
* :mod:`repro.explore.fuzz` — budgeted :class:`FaultPlan` mutation with
  AFL-style coverage-novelty prioritisation.
* :mod:`repro.explore.minimize` — delta-debugging a violating case to a
  1-minimal repro.
* :mod:`repro.explore.corpus` — the mutation corpus: deliberately
  broken schedulers/runtimes the explorer must catch (and the real ones
  it must not).
* :mod:`repro.explore.engine` / :mod:`repro.explore.campaign` — the
  budgeted search loop and the multi-target campaign the CLI runs.
* :mod:`repro.explore.artifact` — canonical JSON repro artifacts and
  their byte-identical ``--replay``.
"""

from repro.explore.artifact import (
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.explore.campaign import (
    CampaignResult,
    campaign_units,
    execute_campaign_unit,
    run_campaign,
)
from repro.explore.cases import ExploreCase, RunReport, run_case
from repro.explore.corpus import CORPUS, CorpusEntry, corpus_entry, real_cases
from repro.explore.engine import ExploreBudget, ExploreResult, explore
from repro.explore.fuzz import CoverageMap, FaultBudget, PlanFuzzer
from repro.explore.minimize import minimize
from repro.explore.oracles import Violation, check_case
from repro.explore.perturb import (
    Choice,
    Perturber,
    RandomPerturber,
    ReplayPerturber,
    ZeroPerturber,
    neighborhood,
)

__all__ = [
    "CORPUS",
    "CampaignResult",
    "Choice",
    "CorpusEntry",
    "CoverageMap",
    "ExploreBudget",
    "ExploreCase",
    "ExploreResult",
    "FaultBudget",
    "Perturber",
    "PlanFuzzer",
    "RandomPerturber",
    "ReplayPerturber",
    "RunReport",
    "Violation",
    "ZeroPerturber",
    "campaign_units",
    "check_case",
    "corpus_entry",
    "execute_campaign_unit",
    "explore",
    "load_artifact",
    "real_cases",
    "minimize",
    "neighborhood",
    "replay_artifact",
    "run_campaign",
    "save_artifact",
]
