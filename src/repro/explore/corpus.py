"""The mutation corpus: deliberately broken targets the explorer must
catch (and the real targets it must leave alone).

Each :class:`CorpusEntry` pairs a subtly broken scheduler or runtime
variant with the case template under which the bug is *reachable* — a
wall-wait skip needs Protocol A readers racing writers, an unclamped
digest needs gossip lag, a dropped incarnation fence needs crashes.
The corpus is the explore subsystem's own test oracle: a search stack
that cannot find these within budget is not trustworthy on the real
schedulers, and a search stack that "finds" violations in the genuine
article has a false-positive bug.

The mutants mirror real bug classes in this codebase's history and in
the paper's own anomaly constructions (Figures 3-4):

* ``hdd-skip-wall-wait`` — Protocol A/C reads ignore the time wall and
  serve the newest committed version (the Figure 3 anomaly machine).
* ``to-no-read-ts`` — timestamp ordering without read registration
  (the Figure 4 anomaly machine, available as the paper's own
  ``register_reads=False`` switch).
* ``dist-stale-digest`` — a node pretends its gossip horizon is
  infinite, admitting digest raises real activity never justified.
* ``dist-no-fence`` — the coordinator drops every incarnation fence,
  so transactions survive node restarts that lost their engine state.
* ``dist-skip-barrier`` — batched gossip skips the consumption barrier
  before wall-computing reads.
* ``dist-skewed-spans`` — commit op-spans are recorded one tick short,
  breaking the critical-path exactness invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ConfigError
from repro.explore.cases import ExploreCase, build_real_scheduler


@dataclass(frozen=True)
class CorpusEntry:
    """One deliberately broken target plus the case shape that reaches
    its bug and the oracle kinds allowed to report it."""

    name: str
    description: str
    #: Violation kinds that count as "caught" for this mutant.
    expected: tuple[str, ...]
    #: ExploreCase overrides (everything except ``mutant``/``choices``).
    template: Mapping[str, object] = field(default_factory=dict)
    #: ``(case, partition) -> scheduler`` for the broken target.
    factory: Callable = None  # type: ignore[assignment]

    def build(self, case: ExploreCase, partition):
        return self.factory(case, partition)

    def case(self, **overrides) -> ExploreCase:
        merged = {**self.template, **overrides, "mutant": self.name}
        return ExploreCase(**merged)


# ----------------------------------------------------------------------
# Simulator-level mutants
# ----------------------------------------------------------------------
def _hdd_skip_wall_wait(case: ExploreCase, partition):
    from repro.core.scheduler import HDDScheduler
    from repro.scheduling import granted

    class SkipWallWait(HDDScheduler):
        """Protocol A/C visibility without the wall: read the newest
        committed version instead of the one below the wall."""

        def _read_below_wall(self, txn, granule, wall, segment):
            chain = self.store.chain(granule)
            version = chain.latest_before(
                self.clock.now + 1, committed_only=True
            )
            if version is None:
                return super()._read_below_wall(
                    txn, granule, wall, segment
                )
            txn.record_read(granule)
            self.stats.reads += 1
            self.stats.unregistered_reads += 1
            self.schedule.record_read(txn.txn_id, granule, version.ts)
            return granted(value=version.value, version_ts=version.ts)

    return SkipWallWait(partition)


def _to_no_read_ts(case: ExploreCase, partition):
    from repro.baselines import TimestampOrdering

    return TimestampOrdering(register_reads=False)


# ----------------------------------------------------------------------
# Distributed-runtime mutants
# ----------------------------------------------------------------------
def _dist_stale_digest(case: ExploreCase, partition):
    from repro.dist.node import SegmentNode
    from repro.dist.runtime import DistributedRuntime

    class StaleDigestNode(SegmentNode):
        """Pretend the gossip horizon is infinite: every digest query
        runs unclamped and settlement is claimed for activity the node
        has never heard about."""

        def _build_volatile(self):
            super()._build_volatile()
            for digest in self.tracker.digests.values():
                digest._horizon = lambda: 1 << 30

    class StaleDigestRuntime(DistributedRuntime):
        NODE_CLASS = StaleDigestNode

    return build_real_scheduler(
        case, partition, runtime_class=StaleDigestRuntime
    )


def _dist_no_fence(case: ExploreCase, partition):
    from repro.dist.runtime import DistributedRuntime

    class NoFenceRuntime(DistributedRuntime):
        """Drop every incarnation fence: transactions whose in-flight
        engine state died with a node restart are allowed to commit."""

        def _process_incarnations(self):
            self._inc_seen.clear()

        def _wire_fence(self, txn):
            return None

        def _crash_fence(self, txn):
            return None

    return build_real_scheduler(
        case, partition, runtime_class=NoFenceRuntime
    )


def _dist_skip_barrier(case: ExploreCase, partition):
    from repro.dist.runtime import DistributedRuntime

    class SkipBarrierRuntime(DistributedRuntime):
        """Batched gossip without the consumption barrier before
        wall-computing READ_A calls."""

        def _flush_for_wall_read(self, start, target, from_below):
            return None

    return build_real_scheduler(
        case, partition, runtime_class=SkipBarrierRuntime
    )


def _dist_skewed_spans(case: ExploreCase, partition):
    from repro.dist.runtime import DistributedRuntime

    class SkewedSpanRuntime(DistributedRuntime):
        """Commit op-spans recorded one tick short."""

        def _span_close(self, op, txn_id, start_tick, status=""):
            if op == "commit":
                start_tick += 1
            super()._span_close(op, txn_id, start_tick, status)

    return build_real_scheduler(
        case, partition, runtime_class=SkewedSpanRuntime
    )


_INVENTORY = {"schema": "inventory", "read_only_share": 0.5}

#: High-contention variant: skewed access over few granules per
#: segment, update-heavy.  Interleaving bugs need conflicts to surface;
#: the uniform default mix can run a whole budget without two
#: transactions ever racing on the same granule.
_CONTENDED = {
    "schema": "inventory",
    "read_only_share": 0.3,
    "skew": 0.9,
    "granules_per_segment": 4,
}

#: Near-pathological contention: almost every transaction is an RMW on
#: one of two hot granules per segment.  The fence mutant needs two
#: same-class writers racing across a crash window, which the milder
#: mixes essentially never produce within a CI-sized budget.
_EXTREME = {
    "schema": "inventory",
    "read_only_share": 0.2,
    "skew": 0.95,
    "granules_per_segment": 2,
}

CORPUS: tuple[CorpusEntry, ...] = (
    CorpusEntry(
        name="hdd-skip-wall-wait",
        description="Protocol A/C reads ignore the time wall",
        expected=("serializability", "engine-error"),
        template={
            "scheduler": "hdd",
            "workload": _CONTENDED,
            "clients": 8,
            "target_commits": 80,
        },
        factory=_hdd_skip_wall_wait,
    ),
    CorpusEntry(
        name="to-no-read-ts",
        description="timestamp ordering without read registration",
        expected=("serializability",),
        template={
            "scheduler": "to",
            "workload": _CONTENDED,
            "clients": 8,
            "target_commits": 80,
        },
        factory=_to_no_read_ts,
    ),
    CorpusEntry(
        name="dist-stale-digest",
        description="node admits digest raises past its gossip horizon",
        expected=(
            "digest-conservatism",
            "serializability",
            "engine-error",
        ),
        template={
            "scheduler": "hdd",
            "dist": True,
            "workload": _INVENTORY,
            "clients": 6,
            "target_commits": 50,
            "wall_interval": 10,
            "plan": {"latency": 2, "jitter": 2},
        },
        factory=_dist_stale_digest,
    ),
    CorpusEntry(
        name="dist-no-fence",
        description="coordinator drops every incarnation fence",
        expected=("serializability", "engine-error"),
        # The fence anomaly needs a crash window landing while two
        # same-class RMW transactions are in flight on the same granule
        # — an extreme-contention mix and a mid-run crash make that
        # reachable within a small search budget.
        template={
            "scheduler": "hdd",
            "dist": True,
            "workload": _EXTREME,
            "clients": 8,
            "seed": 2,
            "net_seed": 2,
            "target_commits": 80,
            "plan": {
                "latency": 3,
                "jitter": 2,
                "crashes": [["node:inventory", 400, 430]],
            },
        },
        factory=_dist_no_fence,
    ),
    CorpusEntry(
        name="dist-skip-barrier",
        description="batched gossip skips the consumption barrier",
        expected=(
            "batched-eager",
            "serializability",
            "digest-conservatism",
            "engine-error",
        ),
        template={
            "scheduler": "hdd",
            "dist": True,
            "batch_gossip": True,
            "workload": _INVENTORY,
            "clients": 6,
            "target_commits": 50,
            "wall_interval": 10,
        },
        factory=_dist_skip_barrier,
    ),
    CorpusEntry(
        name="dist-skewed-spans",
        description="commit op-spans recorded one tick short",
        expected=("critical-path",),
        template={
            "scheduler": "hdd",
            "dist": True,
            "workload": _INVENTORY,
            "clients": 6,
            "target_commits": 40,
            "plan": {"latency": 1},
        },
        factory=_dist_skewed_spans,
    ),
)

_BY_NAME = {entry.name: entry for entry in CORPUS}


def corpus_entry(name: str) -> CorpusEntry:
    entry = _BY_NAME.get(name)
    if entry is None:
        raise ConfigError(
            f"unknown corpus mutant {name!r}; choose from {sorted(_BY_NAME)}"
        )
    return entry


def real_cases() -> list[ExploreCase]:
    """The genuine targets every campaign must leave clean: monolithic
    HDD, eager dist, and batched-ideal dist."""
    return [
        ExploreCase(
            scheduler="hdd",
            workload=_INVENTORY,
            clients=8,
            target_commits=80,
        ),
        ExploreCase(
            scheduler="hdd",
            dist=True,
            workload=_INVENTORY,
            clients=6,
            target_commits=50,
            plan={"latency": 1, "jitter": 1},
        ),
        ExploreCase(
            scheduler="hdd",
            dist=True,
            batch_gossip=True,
            workload=_INVENTORY,
            clients=6,
            target_commits=50,
        ),
    ]
