"""Multi-target exploration campaigns (the ``repro explore`` default).

A campaign fans the whole mutation corpus plus the real targets out as
independent (target, seed) units through the same order-preserving
parallel primitive the sweep runner uses
(:func:`repro.sweep.runner.parallel_map_iter`), then merges unit
summaries in deterministic submission order — so a campaign summary is
byte-identical for any ``--workers`` value.

Each work unit is pure data in and pure data out: the unit dict names a
corpus mutant (or a real-target index) plus its seed and budget knobs,
and the summary dict carries JSON-safe results only — including the
full minimized artifact for every finding, so the CLI can write the
violation artifacts without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.explore.artifact import artifact_dict
from repro.explore.cases import ExploreCase
from repro.explore.corpus import CORPUS, corpus_entry, real_cases
from repro.explore.engine import ExploreBudget, explore
from repro.sweep.runner import parallel_map_iter


def execute_campaign_unit(unit: Mapping[str, object]) -> dict[str, object]:
    """One (target, seed) exploration; the process-pool work unit."""
    budget = ExploreBudget(
        episodes=int(unit["episodes"]),
        neighborhood=int(unit["neighborhood"]),
        fuzz=int(unit["fuzz"]),
        rate=float(unit["rate"]),
        minimize_tests=int(unit["minimize_tests"]),
    )
    if unit.get("mutant"):
        template = corpus_entry(str(unit["mutant"])).case()
    else:
        template = real_cases()[int(unit["real_index"])]
    seed = int(unit["seed"])
    result = explore(template, budget, base_seed=seed)
    findings = []
    for finding in result.findings:
        findings.append(
            {
                "phase": finding.phase,
                "kinds": sorted({v.kind for v in finding.violations}),
                "minimize_tests": finding.minimize_tests,
                "atoms": len(finding.minimized.choices)
                + len(dict(finding.minimized.plan)),
                "artifact": artifact_dict(
                    finding.report, finding.minimized_violations
                ),
            }
        )
    return {
        "target": result.target,
        "mutant": unit.get("mutant"),
        "seed": seed,
        "runs": result.runs,
        "coverage": result.coverage,
        "caught": result.caught,
        "findings": findings,
        "replay_failures": list(result.replay_failures),
    }


@dataclass
class CampaignResult:
    """Deterministically merged campaign summary."""

    units: list[dict[str, object]] = field(default_factory=list)

    @property
    def mutants_caught(self) -> dict[str, bool]:
        caught: dict[str, bool] = {}
        for unit in self.units:
            mutant = unit.get("mutant")
            if mutant:
                caught[mutant] = caught.get(mutant, False) or bool(
                    unit["caught"]
                )
        return caught

    @property
    def real_violations(self) -> list[dict[str, object]]:
        return [
            unit
            for unit in self.units
            if not unit.get("mutant") and unit["caught"]
        ]

    @property
    def replay_failures(self) -> list[str]:
        failures = []
        for unit in self.units:
            failures.extend(unit.get("replay_failures", []))
        return failures

    @property
    def all_minimized(self) -> bool:
        """Every caught mutant produced at least one finding whose kind
        is in the corpus entry's expected set and whose artifact
        reproduces (replay verification happened inside explore)."""
        for unit in self.units:
            mutant = unit.get("mutant")
            if not mutant or not unit["caught"]:
                continue
            expected = set(corpus_entry(mutant).expected)
            if not any(
                expected & set(finding["kinds"])
                for finding in unit["findings"]
            ):
                return False
        return True

    def summary(self) -> dict[str, object]:
        caught = self.mutants_caught
        return {
            "bench": "explore_coverage",
            "corpus": {
                "total": len(caught),
                "caught": sum(caught.values()),
                "by_mutant": dict(sorted(caught.items())),
                "all_minimized": bool(caught) and self.all_minimized,
            },
            "clean": {
                "real_targets": sum(
                    1 for unit in self.units if not unit.get("mutant")
                ),
                "violations": len(self.real_violations),
            },
            "runs": sum(unit["runs"] for unit in self.units),
            "coverage_features": max(
                (unit["coverage"] for unit in self.units), default=0
            ),
            "replay_failures": len(self.replay_failures),
        }


def campaign_units(
    seeds: Sequence[int],
    episodes: int = 12,
    neighborhood: int = 8,
    fuzz: int = 6,
    rate: float = 0.25,
    minimize_tests: int = 250,
    mutants: Optional[Sequence[str]] = None,
    include_real: bool = True,
) -> list[dict[str, object]]:
    """The deterministic unit list a campaign executes, in order."""
    names = (
        list(mutants)
        if mutants is not None
        else [entry.name for entry in CORPUS]
    )
    units: list[dict[str, object]] = []
    base = {
        "episodes": episodes,
        "neighborhood": neighborhood,
        "fuzz": fuzz,
        "rate": rate,
        "minimize_tests": minimize_tests,
    }
    for name in names:
        for seed in seeds:
            units.append({**base, "mutant": name, "seed": seed})
    if include_real:
        for index in range(len(real_cases())):
            for seed in seeds:
                units.append(
                    {**base, "real_index": index, "seed": seed}
                )
    return units


def run_campaign(
    units: Sequence[Mapping[str, object]], workers: int = 1
) -> CampaignResult:
    """Execute units (in parallel when asked) and merge in unit order."""
    return CampaignResult(
        units=list(
            parallel_map_iter(execute_campaign_unit, list(units), workers)
        )
    )
