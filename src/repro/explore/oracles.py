"""What "broken" means: the oracle layer behind every explored run.

Every executed :class:`~repro.explore.cases.RunReport` passes through
:func:`check_case`, which applies each oracle that is *valid* for the
case's shape and returns the violations found:

* ``serializability`` — the full Bernstein–Goodman MVSG audit over the
  recorded schedule (the same criterion ``audit=True`` enforces, run
  here explicitly so a failure is data rather than an exception).
* ``engine-error`` — the run died in a stall or an internal exception.
  Mutants usually fail this way: corrupted scheduler state rarely makes
  it all the way to a cleanly non-serializable schedule.
* ``digest-conservatism`` — every released time wall's components must
  be at most the *omniscient* ``E`` values recomputed after the fact
  from every node's full journal (only meaningful under a non-ideal
  plan: ideal plans use oracle-clock horizons, so the clamps are
  no-ops).  This catches a node that admits stale digest raises.
* ``critical-path`` — the PR-7 exactness invariant: every committed
  transaction's latency must be fully attributed to buckets.
* ``batched-eager`` — a batched-gossip ideal-plan run must commit the
  exact same schedule as its eager counterpart (valid only when all
  perturbation choices are simulator-level, so both runs see the same
  decision stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import NotComputableError
from repro.explore.cases import ExploreCase, RunReport, run_case
from repro.txn.depgraph import find_dependency_cycle, is_serializable


@dataclass(frozen=True)
class Violation:
    """One oracle failure: which property broke and how."""

    kind: str
    detail: str

    def to_dict(self) -> dict[str, str]:
        return {"kind": self.kind, "detail": self.detail}


def check_serializability(report: RunReport) -> Optional[Violation]:
    schedule = getattr(report.scheduler, "schedule", None)
    if schedule is None:
        return None
    if is_serializable(schedule, mode="mvsg"):
        return None
    cycle = find_dependency_cycle(schedule, mode="mvsg")
    return Violation(
        "serializability",
        f"MVSG has a cycle: {cycle}" if cycle else "MVSG is cyclic",
    )


def check_engine_error(report: RunReport) -> Optional[Violation]:
    if report.error is None:
        return None
    return Violation("engine-error", report.error)


def check_digest_conservatism(report: RunReport) -> Optional[Violation]:
    """Released wall components vs. post-hoc omniscient recomputation.

    ``E(s, i, m)`` depends only on activity at or before ``m``-ish
    times, so recomputing it from the *complete* journals after the run
    yields the true value at each wall's base time — a wall released
    with a larger component admitted a digest raise the real activity
    never justified.  Computed per released wall, per component class;
    ``NotComputableError`` means the omniscient tracker cannot settle
    the value either, in which case conservative withholding was the
    only legal behaviour and the component is skipped.
    """
    runtime = report.scheduler
    nodes = getattr(runtime, "nodes", None)
    if not nodes or not report.walls:
        return None
    plan = getattr(runtime, "plan", None)
    if plan is None or plan.is_ideal:
        return None  # oracle-clock horizons: clamps are no-ops
    from repro.core.activity import ActivityTracker

    omniscient = ActivityTracker(runtime.partition.index)
    for class_id, node in nodes.items():
        for entry in node.journal:
            if entry["kind"] == "begin":
                omniscient.record_begin(
                    class_id, entry["txn"], entry["ts"]
                )
            else:
                omniscient.record_end(class_id, entry["txn"], entry["ts"])
    for wall in report.walls:
        for class_id, component in wall.components.items():
            try:
                truth = omniscient.e_func(
                    wall.start_class, class_id, wall.base_time
                )
            except NotComputableError:
                continue
            if component > truth:
                return Violation(
                    "digest-conservatism",
                    f"wall seq={wall.seq} base={wall.base_time} "
                    f"component[{class_id}]={component} exceeds "
                    f"omniscient E={truth}",
                )
    return None


def check_critical_path(report: RunReport) -> Optional[Violation]:
    if not report.events or not report.case.dist:
        return None
    from repro.obs import CausalTrace, CriticalPathAnalyzer

    try:
        problems = CriticalPathAnalyzer(
            CausalTrace(list(report.events))
        ).check()
    except Exception as exc:  # noqa: BLE001 - a broken DAG is a finding
        return Violation(
            "critical-path", f"analyzer failed: {type(exc).__name__}: {exc}"
        )
    if not problems:
        return None
    return Violation("critical-path", "; ".join(problems[:3]))


def batched_eager_applicable(case: ExploreCase) -> bool:
    """The equivalence claim only holds for ideal-plan batched runs,
    and only when every recorded choice is simulator-level (a net-level
    choice would hit different call addresses in the two runs)."""
    return (
        case.dist
        and case.batch_gossip
        and not dict(case.plan)
        and all(c.point in ("ready", "arrival") for c in case.choices)
    )


def check_batched_eager(
    report: RunReport,
    runner: Callable[[ExploreCase], RunReport] = run_case,
) -> Optional[Violation]:
    if not batched_eager_applicable(report.case):
        return None
    from dataclasses import replace

    eager = runner(replace(report.case, batch_gossip=False))
    if report.schedule_lines == eager.schedule_lines:
        return None
    divergence = next(
        (
            i
            for i, (a, b) in enumerate(
                zip(report.schedule_lines, eager.schedule_lines)
            )
            if a != b
        ),
        min(len(report.schedule_lines), len(eager.schedule_lines)),
    )
    return Violation(
        "batched-eager",
        f"batched and eager schedules diverge at step {divergence} "
        f"(batched={len(report.schedule_lines)} steps, "
        f"eager={len(eager.schedule_lines)} steps)",
    )


def check_case(
    report: RunReport,
    runner: Callable[[ExploreCase], RunReport] = run_case,
) -> list[Violation]:
    """All valid oracles over one run, in severity order."""
    violations = []
    for check in (
        check_serializability,
        check_engine_error,
        check_digest_conservatism,
        check_critical_path,
    ):
        violation = check(report)
        if violation is not None:
            violations.append(violation)
    violation = check_batched_eager(report, runner)
    if violation is not None:
        violations.append(violation)
    return violations
